"""Ready-queue data structures shared by both simulators.

Two disciplines cover every scheduling class in the reproduction:

* :class:`HeapReadyQueue` — a keyed binary heap with lazy removal, for
  classes whose urgency is an arbitrary totally-ordered key (RM/DM rank
  tuples, EDF absolute deadlines).  Push/pop are O(log n); removal of an
  arbitrary entry is O(1) amortized (mark + sweep at the top, with the
  same half-dead compaction rule the event engine uses).
* :class:`IndexedLevelQueue` — a fixed range of integer priority levels,
  each a FIFO :class:`CircularDList`, indexed by a :class:`PriorityBitmap`
  for O(1) find-highest.  This is the paper's Figure 5 / Linux
  ``SCHED_FIFO`` structure (double circular linked list per level plus a
  bitmap), used by the FIFO-99 scheduling class.

Both structures are *policy-free*: ordering semantics live in
:mod:`repro.engine.classes`.
"""

import heapq

#: Compaction trigger for lazily-removed heap entries.
_COMPACT_MIN_REMOVED = 64


class ReadyQueueError(Exception):
    """An invalid ready-queue operation (duplicate enqueue, pop from an
    empty queue, out-of-range priority level, ...)."""


# ---------------------------------------------------------------------------
# keyed heap with lazy removal
# ---------------------------------------------------------------------------


class HeapReadyQueue:
    """Priority queue over arbitrary items ordered by ``key(item)``.

    :param key: callable mapping an item to a totally-ordered key;
        *smaller keys are more urgent*.  The key is evaluated once at
        push time — callers must remove and re-push an item whose
        urgency changes (exactly the requeue discipline the kernel uses
        for priority inheritance).

    Items with equal keys dequeue in FIFO push order (a monotone
    sequence number breaks ties), which is what makes simultaneous
    releases deterministic.

    Entries are plain ``(key, seq, item)`` tuples so heap sifts compare
    at C speed; the unique ``seq`` guarantees the comparison never
    reaches ``item``.  Removal is lazy: ``_live`` maps ``id(item)`` to
    the seq of its current entry, and any heap tuple whose seq no longer
    matches is dead (a dead tuple keeps its item referenced, so the id
    cannot be recycled into a false match while the tuple exists).
    """

    def __init__(self, key, cpu_id=None):
        self.cpu_id = cpu_id
        self._key = key
        self._heap = []
        self._live = {}
        self._seq = 0
        self._removed = 0
        # depth high-water mark (telemetry, see :meth:`counters`).
        self._peak_depth = 0
        #: optional probe bus (duck-typed; see :mod:`repro.obs.bus`).
        #: Owned by whoever built the queue — the kernel wires its run
        #: queues to its bus; standalone queues stay unobserved.
        self.probes = None

    def __len__(self):
        return len(self._live)

    def __bool__(self):
        return bool(self._live)

    def __contains__(self, item):
        return id(item) in self._live

    def __iter__(self):
        """Live items in arbitrary (heap) order — introspection only."""
        live = self._live
        for _key, seq, item in self._heap:
            if live.get(id(item)) == seq:
                yield item

    def push(self, item):
        if id(item) in self._live:
            raise ReadyQueueError(f"{item!r} already enqueued")
        self._seq += 1
        self._live[id(item)] = self._seq
        heapq.heappush(self._heap, (self._key(item), self._seq, item))
        if len(self._live) > self._peak_depth:
            self._peak_depth = len(self._live)
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.enqueue", cpu=self.cpu_id,
                           depth=len(self._live))

    def remove(self, item):
        """Remove ``item`` from anywhere in the queue (lazy)."""
        if self._live.pop(id(item), None) is None:
            raise ReadyQueueError(f"{item!r} not enqueued")
        self._removed += 1
        self._maybe_compact()
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.dequeue", cpu=self.cpu_id,
                           depth=len(self._live))

    def _maybe_compact(self):
        if self._removed < _COMPACT_MIN_REMOVED:
            return
        if self._removed * 2 <= len(self._heap):
            return
        live = self._live
        self._heap = [
            entry for entry in self._heap
            if live.get(id(entry[2])) == entry[1]
        ]
        heapq.heapify(self._heap)
        self._removed = 0

    def _sweep_top(self):
        heap = self._heap
        live = self._live
        while heap and live.get(id(heap[0][2])) != heap[0][1]:
            heapq.heappop(heap)
            self._removed -= 1

    def peek(self):
        """Most urgent item, or ``None`` when empty (not removed)."""
        self._sweep_top()
        if not self._heap:
            return None
        return self._heap[0][2]

    def peek_key(self):
        """Key of the most urgent item, or ``None`` when empty."""
        self._sweep_top()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self):
        """Remove and return the most urgent item."""
        self._sweep_top()
        if not self._heap:
            raise ReadyQueueError("pop from empty ready queue")
        _key, _seq, item = heapq.heappop(self._heap)
        del self._live[id(item)]
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.pop", cpu=self.cpu_id,
                           depth=len(self._live))
        return item

    def pop_upto(self, n):
        """Remove and return up to ``n`` most urgent items (ordered).

        Used by global scheduling to pull the top-M candidates without
        draining the whole queue; push back the ones that lose the slot.
        """
        taken = []
        while len(taken) < n:
            self._sweep_top()
            if not self._heap:
                break
            _key, _seq, item = heapq.heappop(self._heap)
            del self._live[id(item)]
            taken.append(item)
        return taken

    def counters(self):
        """JSON-ready depth telemetry (keyed heaps have no levels, so
        ``level_peaks`` is empty — same shape as the level queues)."""
        return {
            "cpu": self.cpu_id,
            "depth": len(self._live),
            "peak_depth": self._peak_depth,
            "level_peaks": {},
        }


# ---------------------------------------------------------------------------
# indexed integer-priority levels (Figure 5 / SCHED_FIFO)
# ---------------------------------------------------------------------------


class _Node:
    """Intrusive list node; one per enqueued thread."""

    __slots__ = ("value", "prev", "next", "owner")

    def __init__(self, value):
        self.value = value
        self.prev = None
        self.next = None
        self.owner = None


class CircularDList:
    """Double circular linked list with O(1) push/pop at both ends.

    Mirrors the kernel's per-priority FIFO list: new runnable threads go
    to the tail; a preempted thread returns to the head (SCHED_FIFO
    semantics — it resumes before equal-priority peers).
    """

    def __init__(self):
        self._head = None
        self._len = 0
        self._nodes = {}

    def __len__(self):
        return self._len

    def __bool__(self):
        return self._len > 0

    def __iter__(self):
        node = self._head
        for _ in range(self._len):
            yield node.value
            node = node.next

    def __contains__(self, value):
        return id(value) in self._nodes

    def _insert_before(self, node, anchor):
        node.prev = anchor.prev
        node.next = anchor
        anchor.prev.next = node
        anchor.prev = node

    def push_tail(self, value):
        """Append ``value`` at the tail (normal enqueue)."""
        if id(value) in self._nodes:
            raise ReadyQueueError(f"{value!r} already enqueued")
        node = _Node(value)
        node.owner = self
        self._nodes[id(value)] = node
        if self._head is None:
            node.prev = node.next = node
            self._head = node
        else:
            self._insert_before(node, self._head)
        self._len += 1

    def push_head(self, value):
        """Insert ``value`` at the head (a preempted thread returning)."""
        self.push_tail(value)
        self._head = self._head.prev

    def peek_head(self):
        """Return the head value without removing it (``None`` if empty)."""
        return self._head.value if self._head else None

    def pop_head(self):
        """Remove and return the head value."""
        if self._head is None:
            raise ReadyQueueError("pop from empty list")
        value = self._head.value
        self.remove(value)
        return value

    def remove(self, value):
        """Remove ``value`` from anywhere in the list in O(1)."""
        node = self._nodes.pop(id(value), None)
        if node is None:
            raise ReadyQueueError(f"{value!r} not in list")
        if self._len == 1:
            self._head = None
        else:
            node.prev.next = node.next
            node.next.prev = node.prev
            if self._head is node:
                self._head = node.next
        node.prev = node.next = None
        node.owner = None
        self._len -= 1


class PriorityBitmap:
    """Bitmap over priority levels with O(1) find-highest.

    Python integers are arbitrary-precision, so a single int serves as the
    bitmap; ``int.bit_length`` gives the highest set bit directly.
    """

    def __init__(self):
        self._bits = 0

    def set(self, prio):
        self._bits |= 1 << prio

    def clear(self, prio):
        self._bits &= ~(1 << prio)

    def is_set(self, prio):
        return bool(self._bits >> prio & 1)

    def highest(self):
        """Highest set priority, or ``None`` when the bitmap is empty."""
        if self._bits == 0:
            return None
        return self._bits.bit_length() - 1

    def __bool__(self):
        return self._bits != 0


class IndexedLevelQueue:
    """Ready queue over integer priority levels, larger = more urgent.

    One FIFO :class:`CircularDList` per level plus a
    :class:`PriorityBitmap` for O(1) lookup of the highest non-empty
    level — the structure of the paper's Figure 5 and of Linux's rt
    scheduling class.

    :param min_prio: lowest valid level (inclusive).
    :param max_prio: highest valid level (inclusive).
    :param cpu_id: owning CPU, for diagnostics.
    """

    def __init__(self, min_prio, max_prio, cpu_id=0):
        self.cpu_id = cpu_id
        self.min_prio = min_prio
        self.max_prio = max_prio
        self._levels = [CircularDList() for _ in range(max_prio + 1)]
        self._bitmap = PriorityBitmap()
        self._count = 0
        # depth high-water marks: whole queue and per level (telemetry,
        # see :meth:`counters`); updated on enqueue only.
        self._peak_depth = 0
        self._level_peaks = [0] * (max_prio + 1)
        #: optional probe bus (duck-typed; see :class:`HeapReadyQueue`).
        self.probes = None

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    def __iter__(self):
        """Items highest level first, FIFO within a level."""
        for prio in range(self.max_prio, self.min_prio - 1, -1):
            if self._bitmap.is_set(prio):
                yield from self._levels[prio]

    def _check_prio(self, prio):
        if not self.min_prio <= prio <= self.max_prio:
            raise ReadyQueueError(
                f"priority {prio} outside level range "
                f"[{self.min_prio}, {self.max_prio}]"
            )

    def enqueue(self, item, prio, at_head=False):
        """Make ``item`` ready at ``prio``.

        ``at_head=True`` reproduces SCHED_FIFO's rule that a *preempted*
        thread goes back to the head of its level; a newly woken thread
        goes to the tail.
        """
        self._check_prio(prio)
        level = self._levels[prio]
        if at_head:
            level.push_head(item)
        else:
            level.push_tail(item)
        self._bitmap.set(prio)
        self._count += 1
        if self._count > self._peak_depth:
            self._peak_depth = self._count
        level_len = len(level)
        if level_len > self._level_peaks[prio]:
            self._level_peaks[prio] = level_len
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.enqueue", cpu=self.cpu_id, prio=prio,
                           depth=self._count)

    def dequeue(self, item, prio):
        """Remove a specific item (e.g. a thread killed while ready)."""
        self._check_prio(prio)
        level = self._levels[prio]
        level.remove(item)
        if not level:
            self._bitmap.clear(prio)
        self._count -= 1
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.dequeue", cpu=self.cpu_id, prio=prio,
                           depth=self._count)

    def peek(self):
        """``(item, prio)`` of the most urgent ready item, or ``None``."""
        prio = self._bitmap.highest()
        if prio is None:
            return None
        return self._levels[prio].peek_head(), prio

    def pop(self):
        """Remove and return ``(item, prio)`` of the most urgent item."""
        prio = self._bitmap.highest()
        if prio is None:
            raise ReadyQueueError(
                f"run queue of CPU {self.cpu_id} empty"
            )
        level = self._levels[prio]
        item = level.pop_head()
        if not level:
            self._bitmap.clear(prio)
        self._count -= 1
        probes = self.probes
        if probes is not None and probes.active:
            probes.publish("rq.pop", cpu=self.cpu_id, prio=prio,
                           depth=self._count)
        return item, prio

    def highest_priority(self):
        """Priority of the most urgent ready item, or ``None``."""
        return self._bitmap.highest()

    def items_at(self, prio):
        """Snapshot (list) of items queued at ``prio``, head first."""
        self._check_prio(prio)
        return list(self._levels[prio])

    def counters(self):
        """JSON-ready depth telemetry: current depth, the queue-wide
        high-water mark, and the per-level high-water marks (levels
        that never held an item are omitted)."""
        return {
            "cpu": self.cpu_id,
            "depth": self._count,
            "peak_depth": self._peak_depth,
            "level_peaks": {
                str(prio): peak
                for prio, peak in enumerate(self._level_peaks)
                if peak
            },
        }
