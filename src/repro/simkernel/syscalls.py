"""Syscall request vocabulary.

Simulated user-space code is written as Python generator coroutines that
``yield`` instances of these request classes; the kernel performs the
effect and resumes the generator with the result.  The vocabulary mirrors
the POSIX calls the paper's implementation uses (Figures 6 and 7):

====================  =================================================
paper / POSIX          request class
====================  =================================================
``sched_setscheduler`` :class:`SchedSetScheduler`
``sched_setaffinity``  :class:`SchedSetAffinity`
``sched_getcpu``       :class:`GetCpu`
``clock_nanosleep``    :class:`ClockNanosleep` (``TIMER_ABSTIME``)
``pthread_cond_wait``  :class:`CondWait`
``pthread_cond_signal``:class:`CondSignal`
``pthread_mutex_*``    :class:`MutexLock` / :class:`MutexUnlock`
``timer_settime``      :class:`TimerSettime`
``sigaction``          :class:`Sigaction`
``sigprocmask``        :class:`SetSignalMask`
(CPU-bound work)       :class:`Compute`
====================  =================================================
"""


class SyscallRequest:
    """Base class; exists so the kernel can type-check yields."""

    __slots__ = ()


class Compute(SyscallRequest):
    """Burn ``work`` nanoseconds of CPU time (at nominal core speed).

    Compute is the only *divisible* request: it can be preempted by a
    higher-priority thread, slowed by SMT sharing, and interrupted by
    signal delivery (which is how optional parts get terminated mid-work).
    ``tag`` labels the work for tracing.
    """

    __slots__ = ("work", "tag")

    def __init__(self, work, tag=None):
        if work < 0:
            raise ValueError(f"negative work: {work}")
        self.work = float(work)
        self.tag = tag

    def __repr__(self):
        return f"Compute({self.work:.0f}ns, tag={self.tag!r})"


class ClockNanosleep(SyscallRequest):
    """Sleep until absolute simulated time ``until`` (``TIMER_ABSTIME``)."""

    __slots__ = ("until",)

    def __init__(self, until):
        self.until = float(until)

    def __repr__(self):
        return f"ClockNanosleep(until={self.until:.0f})"


class CondWait(SyscallRequest):
    """``pthread_cond_wait``: atomically release ``mutex`` and block.

    The mutex must be held by the calling thread; it is re-acquired before
    the call returns, exactly as POSIX requires (Mesa semantics — callers
    must re-check their predicate).
    """

    __slots__ = ("cond", "mutex")

    def __init__(self, cond, mutex):
        self.cond = cond
        self.mutex = mutex


class CondSignal(SyscallRequest):
    """``pthread_cond_signal``: wake one waiter (FIFO order).

    The paper deliberately uses ``pthread_cond_signal`` rather than
    ``pthread_cond_broadcast`` so that individual parallel optional parts
    can be woken (or left discarded) independently.
    """

    __slots__ = ("cond",)

    def __init__(self, cond):
        self.cond = cond


class CondBroadcast(SyscallRequest):
    """``pthread_cond_broadcast``: wake every waiter.

    Provided for completeness — Section IV-C explains why RT-Seed does
    *not* use it: a broadcast cannot leave individual optional parts
    discarded, so every part would be woken whether or not there is
    time for it.
    """

    __slots__ = ("cond",)

    def __init__(self, cond):
        self.cond = cond


class MutexLock(SyscallRequest):
    """Acquire a mutex, blocking FIFO if contended."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class MutexUnlock(SyscallRequest):
    """Release a mutex owned by the calling thread."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class TimerSettime(SyscallRequest):
    """Arm (absolute one-shot) or disarm a :class:`~repro.simkernel.timers.KTimer`.

    ``at=None`` disarms — the ``timer_settime(timer_id, 0, &stop_itval, ...)``
    call in Figure 7.
    """

    __slots__ = ("timer", "at")

    def __init__(self, timer, at):
        self.timer = timer
        self.at = None if at is None else float(at)


class Sigaction(SyscallRequest):
    """Install a disposition for ``signum`` on the calling thread."""

    __slots__ = ("signum", "disposition")

    def __init__(self, signum, disposition):
        self.signum = signum
        self.disposition = disposition


class SetSignalMask(SyscallRequest):
    """Replace the calling thread's blocked-signal set."""

    __slots__ = ("mask",)

    def __init__(self, mask):
        self.mask = frozenset(mask)


class SchedSetScheduler(SyscallRequest):
    """Set the calling thread's policy and SCHED_FIFO priority."""

    __slots__ = ("policy", "priority")

    def __init__(self, policy, priority):
        self.policy = policy
        self.priority = priority


class SchedSetAffinity(SyscallRequest):
    """Pin a thread (the caller, or ``thread`` if given) to one CPU."""

    __slots__ = ("cpu", "thread")

    def __init__(self, cpu, thread=None):
        self.cpu = int(cpu)
        self.thread = thread


class SchedYield(SyscallRequest):
    """Yield the CPU to the tail of the caller's priority level."""

    __slots__ = ()


class GetCpu(SyscallRequest):
    """Return the CPU the calling thread is running on."""

    __slots__ = ()


class GetTime(SyscallRequest):
    """Return the current simulated time (``clock_gettime``)."""

    __slots__ = ()


class Exit(SyscallRequest):
    """Terminate the calling thread immediately."""

    __slots__ = ()


class Spawn(SyscallRequest):
    """Create and start a new kernel thread.

    :param thread: a not-yet-started :class:`~repro.simkernel.thread.KernelThread`.
    """

    __slots__ = ("thread",)

    def __init__(self, thread):
        self.thread = thread
