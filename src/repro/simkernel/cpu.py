"""CPU topology: cores, hardware threads, and SMT rate sharing.

The paper evaluates on a Xeon Phi 3120A: 57 in-order cores, each with four
hardware threads sharing the core pipeline.  A *CPU* in Linux terms is a
hardware thread; scheduling happens per hardware thread, but compute
throughput is shared per core.  The Xeon Phi's in-order pipeline cannot
issue from the same hardware thread on consecutive cycles, so a single
busy hardware thread only reaches about half of a core's peak throughput;
two or more busy hardware threads share the core evenly.  That quirk is
captured by the default share function and matters to the QoS ablation
(one-by-one placement gives each optional part more throughput than
all-by-all).
"""


def xeon_phi_share(busy_count):
    """Per-thread throughput share for ``busy_count`` busy siblings.

    ``1 -> 0.5`` models the in-order two-cycle issue restriction; for two
    or more busy hardware threads the core's full throughput is divided
    evenly.  ``busy_count`` may be fractional when background load is
    weighted (see :class:`Core`).
    """
    if busy_count <= 0:
        return 0.0
    if busy_count <= 1:
        return 0.5
    return 1.0 / busy_count


def uniform_share(busy_count):
    """Idealised share function: a lone thread gets the whole core."""
    if busy_count <= 0:
        return 0.0
    return 1.0 / max(busy_count, 1.0)


class HardwareThread:
    """One logical CPU (Linux CPU id).

    ``background_busy`` marks a hardware thread occupied by a background
    load task (the paper's CPU load / CPU-Memory load experiments run
    infinite loops on *all* hardware threads).  Background work never
    generates simulation events; it only occupies pipeline share whenever
    no SCHED_FIFO thread is computing on the hardware thread.
    """

    __slots__ = ("cpu_id", "core", "_background_busy")

    def __init__(self, cpu_id, core):
        self.cpu_id = cpu_id
        self.core = core
        self._background_busy = False

    @property
    def background_busy(self):
        return self._background_busy

    @background_busy.setter
    def background_busy(self, value):
        # mirrored into a per-core flag count so the kernel's occupancy
        # scan can skip cores with no background load at all (the
        # dominant configuration) without walking the siblings
        value = bool(value)
        if value != self._background_busy:
            self._background_busy = value
            self.core.n_background_flagged += 1 if value else -1

    def __repr__(self):
        return f"<HardwareThread cpu={self.cpu_id} core={self.core.core_id}>"


class Core:
    """A physical core owning ``threads_per_core`` hardware threads.

    ``background_weight`` controls how strongly declarative background
    load steals pipeline share from simulated threads.  The evaluation
    machine sets it to 0: the paper's Figures 10–13 measure *latency
    contention* (cache pollution, branch-unit pressure — injected through
    the cost model), not throughput loss on the pinned real-time core,
    and the paper's part WCETs are wall-clock budgets that already
    "include the overheads".  QoS ablations may set it to 1.0 to study
    throughput interference too.
    """

    __slots__ = ("core_id", "hw_threads", "speed", "share_fn",
                 "background_weight", "n_background_flagged")

    def __init__(self, core_id, speed, share_fn, background_weight=1.0):
        self.core_id = core_id
        self.hw_threads = []
        self.speed = speed
        self.share_fn = share_fn
        self.background_weight = background_weight
        #: how many sibling hardware threads carry ``background_busy``
        #: (maintained by the :class:`HardwareThread` setter)
        self.n_background_flagged = 0

    def rate_for(self, computing_hw_count, background_hw_count):
        """Throughput (work-ns per sim-ns) for each computing thread.

        :param computing_hw_count: hardware threads of this core currently
            running a SCHED_FIFO/OTHER compute step.
        :param background_hw_count: additional hardware threads occupied by
            declarative background load.
        """
        busy = computing_hw_count + self.background_weight * background_hw_count
        if computing_hw_count <= 0:
            return 0.0
        return self.speed * self.share_fn(busy)

    def __repr__(self):
        return f"<Core {self.core_id} hw={[t.cpu_id for t in self.hw_threads]}>"


class Topology:
    """A machine: ``n_cores`` cores x ``threads_per_core`` hardware threads.

    CPU ids are assigned the way the Xeon Phi (and the paper's Figure 8)
    numbers them: **core-major by default** (cpu = core * threads_per_core
    + hw) or **thread-major** (cpu = hw * n_cores + core).  The paper's
    assignment policies reason in terms of "hardware thread j of core c",
    so the topology exposes :meth:`cpu_of` for that mapping and policies
    never depend on the raw numbering.

    :param n_cores: number of physical cores.
    :param threads_per_core: SMT width.
    :param speed: core throughput in work-ns per sim-ns (1.0 = nominal).
    :param share_fn: SMT share function, e.g. :func:`xeon_phi_share`.
    """

    def __init__(
        self,
        n_cores,
        threads_per_core,
        speed=1.0,
        share_fn=xeon_phi_share,
        numbering="core_major",
        background_weight=1.0,
    ):
        if n_cores < 1 or threads_per_core < 1:
            raise ValueError("topology needs at least one core and thread")
        if numbering not in ("core_major", "thread_major"):
            raise ValueError(f"unknown numbering: {numbering!r}")
        self.n_cores = n_cores
        self.threads_per_core = threads_per_core
        self.numbering = numbering
        self.cores = [
            Core(c, speed, share_fn, background_weight=background_weight)
            for c in range(n_cores)
        ]
        self.hw_threads = [None] * (n_cores * threads_per_core)
        for core in self.cores:
            for hw in range(threads_per_core):
                cpu_id = self._cpu_id(core.core_id, hw)
                thread = HardwareThread(cpu_id, core)
                core.hw_threads.append(thread)
                self.hw_threads[cpu_id] = thread

    def _cpu_id(self, core_id, hw_index):
        if self.numbering == "core_major":
            return core_id * self.threads_per_core + hw_index
        return hw_index * self.n_cores + core_id

    @property
    def n_cpus(self):
        """Total number of hardware threads (Linux CPUs)."""
        return self.n_cores * self.threads_per_core

    def cpu_of(self, core_id, hw_index):
        """CPU id of hardware thread ``hw_index`` on core ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core {core_id} out of range")
        if not 0 <= hw_index < self.threads_per_core:
            raise ValueError(f"hw thread {hw_index} out of range")
        return self.cores[core_id].hw_threads[hw_index].cpu_id

    def core_of(self, cpu_id):
        """The :class:`Core` owning CPU ``cpu_id``."""
        return self.hw_threads[cpu_id].core

    def siblings(self, cpu_id):
        """CPU ids sharing a core with ``cpu_id`` (including itself)."""
        return [t.cpu_id for t in self.hw_threads[cpu_id].core.hw_threads]

    def set_background_load(self, cpu_ids=None, busy=True):
        """Mark hardware threads as occupied by background load.

        ``cpu_ids=None`` marks every hardware thread — the paper's load
        experiments run the load program on all 228 hardware threads.
        """
        if cpu_ids is None:
            cpu_ids = range(self.n_cpus)
        for cpu_id in cpu_ids:
            self.hw_threads[cpu_id].background_busy = busy

    def __repr__(self):
        return (
            f"<Topology {self.n_cores}x{self.threads_per_core} "
            f"({self.n_cpus} CPUs)>"
        )
