"""Per-CPU SCHED_FIFO run queues.

Figure 5 of the paper shows the kernel-space structure RT-Seed relies on:
per-CPU FIFO thread queues with 99 priority levels, each level managed as
a double circular linked list, with larger priority values denoting
higher priority.  The generic structure (intrusive circular list per
level plus a priority bitmap for O(1) lookup of the highest non-empty
level — the same trick Linux's rt scheduling class uses) lives in
:mod:`repro.engine.readyqueue`; this module specializes it to the
SCHED_FIFO priority range and keeps the historical import path working.

The kernel no longer manipulates these queues directly — dispatch goes
through the :class:`~repro.engine.classes.Fifo99Class` scheduling class,
whose ``make_queue`` produces this structure.
"""

from repro.engine.readyqueue import (
    CircularDList,
    IndexedLevelQueue,
    PriorityBitmap,
    ReadyQueueError,
)

#: Number of real-time priority levels (1..99), as in Linux SCHED_FIFO.
NR_RT_PRIORITIES = 99

#: Lowest valid SCHED_FIFO priority.
MIN_RT_PRIO = 1

#: Highest valid SCHED_FIFO priority.
MAX_RT_PRIO = 99


class FifoRunQueue(IndexedLevelQueue):
    """One CPU's ready queue: 99 FIFO levels plus the bitmap.

    Priorities follow Linux ``SCHED_FIFO``: integers in ``[1, 99]``,
    larger is more urgent.  ``SCHED_OTHER`` background threads are
    modelled declaratively (see
    :class:`repro.simkernel.cpu.HardwareThread`), so the run queue only
    ever holds real-time threads.
    """

    def __init__(self, cpu_id):
        super().__init__(MIN_RT_PRIO, MAX_RT_PRIO, cpu_id=cpu_id)

    #: Historical name for :meth:`IndexedLevelQueue.items_at`.
    threads_at = IndexedLevelQueue.items_at


__all__ = [
    "NR_RT_PRIORITIES",
    "MIN_RT_PRIO",
    "MAX_RT_PRIO",
    "CircularDList",
    "FifoRunQueue",
    "PriorityBitmap",
    "ReadyQueueError",
]
