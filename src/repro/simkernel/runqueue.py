"""Per-CPU SCHED_FIFO run queues.

Figure 5 of the paper shows the kernel-space structure RT-Seed relies on:
per-CPU FIFO thread queues with 99 priority levels, each level managed as a
double circular linked list, with larger priority values denoting higher
priority.  This module reproduces that structure: an intrusive circular
doubly-linked list per level plus a priority bitmap for O(1) lookup of the
highest non-empty level (the same trick Linux's rt scheduling class uses).
"""

from repro.simkernel.errors import SchedulingError

#: Number of real-time priority levels (1..99), as in Linux SCHED_FIFO.
NR_RT_PRIORITIES = 99

#: Lowest valid SCHED_FIFO priority.
MIN_RT_PRIO = 1

#: Highest valid SCHED_FIFO priority.
MAX_RT_PRIO = 99


class _Node:
    """Intrusive list node; one per enqueued thread."""

    __slots__ = ("value", "prev", "next", "owner")

    def __init__(self, value):
        self.value = value
        self.prev = None
        self.next = None
        self.owner = None


class CircularDList:
    """Double circular linked list with O(1) push/pop at both ends.

    Mirrors the kernel's per-priority FIFO list: new runnable threads go
    to the tail; a preempted thread returns to the head (SCHED_FIFO
    semantics — it resumes before equal-priority peers).
    """

    def __init__(self):
        self._head = None
        self._len = 0
        self._nodes = {}

    def __len__(self):
        return self._len

    def __bool__(self):
        return self._len > 0

    def __iter__(self):
        node = self._head
        for _ in range(self._len):
            yield node.value
            node = node.next

    def __contains__(self, value):
        return id(value) in self._nodes

    def _insert_before(self, node, anchor):
        node.prev = anchor.prev
        node.next = anchor
        anchor.prev.next = node
        anchor.prev = node

    def push_tail(self, value):
        """Append ``value`` at the tail (normal enqueue)."""
        if id(value) in self._nodes:
            raise SchedulingError(f"{value!r} already enqueued")
        node = _Node(value)
        node.owner = self
        self._nodes[id(value)] = node
        if self._head is None:
            node.prev = node.next = node
            self._head = node
        else:
            self._insert_before(node, self._head)
        self._len += 1

    def push_head(self, value):
        """Insert ``value`` at the head (a preempted thread returning)."""
        self.push_tail(value)
        self._head = self._head.prev

    def peek_head(self):
        """Return the head value without removing it (``None`` if empty)."""
        return self._head.value if self._head else None

    def pop_head(self):
        """Remove and return the head value."""
        if self._head is None:
            raise SchedulingError("pop from empty list")
        value = self._head.value
        self.remove(value)
        return value

    def remove(self, value):
        """Remove ``value`` from anywhere in the list in O(1)."""
        node = self._nodes.pop(id(value), None)
        if node is None:
            raise SchedulingError(f"{value!r} not in list")
        if self._len == 1:
            self._head = None
        else:
            node.prev.next = node.next
            node.next.prev = node.prev
            if self._head is node:
                self._head = node.next
        node.prev = node.next = None
        node.owner = None
        self._len -= 1


class PriorityBitmap:
    """Bitmap over priority levels with O(1) find-highest.

    Python integers are arbitrary-precision, so a single int serves as the
    bitmap; ``int.bit_length`` gives the highest set bit directly.
    """

    def __init__(self):
        self._bits = 0

    def set(self, prio):
        self._bits |= 1 << prio

    def clear(self, prio):
        self._bits &= ~(1 << prio)

    def is_set(self, prio):
        return bool(self._bits >> prio & 1)

    def highest(self):
        """Highest set priority, or ``None`` when the bitmap is empty."""
        if self._bits == 0:
            return None
        return self._bits.bit_length() - 1

    def __bool__(self):
        return self._bits != 0


class FifoRunQueue:
    """One CPU's ready queue: 99 FIFO levels plus the bitmap.

    Priorities follow Linux ``SCHED_FIFO``: integers in ``[1, 99]``, larger
    is more urgent.  ``SCHED_OTHER`` background threads are modelled
    declaratively (see :class:`repro.simkernel.cpu.HardwareThread`), so the
    run queue only ever holds real-time threads.
    """

    def __init__(self, cpu_id):
        self.cpu_id = cpu_id
        self._levels = [CircularDList() for _ in range(MAX_RT_PRIO + 1)]
        self._bitmap = PriorityBitmap()
        self._count = 0

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    @staticmethod
    def _check_prio(prio):
        if not MIN_RT_PRIO <= prio <= MAX_RT_PRIO:
            raise SchedulingError(
                f"priority {prio} outside SCHED_FIFO range "
                f"[{MIN_RT_PRIO}, {MAX_RT_PRIO}]"
            )

    def enqueue(self, thread, prio, at_head=False):
        """Make ``thread`` runnable at ``prio``.

        ``at_head=True`` reproduces SCHED_FIFO's rule that a *preempted*
        thread goes back to the head of its level; a newly woken thread
        goes to the tail.
        """
        self._check_prio(prio)
        level = self._levels[prio]
        if at_head:
            level.push_head(thread)
        else:
            level.push_tail(thread)
        self._bitmap.set(prio)
        self._count += 1

    def dequeue(self, thread, prio):
        """Remove a specific thread (e.g. it was killed while ready)."""
        self._check_prio(prio)
        level = self._levels[prio]
        level.remove(thread)
        if not level:
            self._bitmap.clear(prio)
        self._count -= 1

    def peek(self):
        """``(thread, prio)`` of the most urgent ready thread, or ``None``."""
        prio = self._bitmap.highest()
        if prio is None:
            return None
        return self._levels[prio].peek_head(), prio

    def pop(self):
        """Remove and return ``(thread, prio)`` of the most urgent thread."""
        prio = self._bitmap.highest()
        if prio is None:
            raise SchedulingError(f"run queue of CPU {self.cpu_id} empty")
        level = self._levels[prio]
        thread = level.pop_head()
        if not level:
            self._bitmap.clear(prio)
        self._count -= 1
        return thread, prio

    def highest_priority(self):
        """Priority of the most urgent ready thread, or ``None``."""
        return self._bitmap.highest()

    def threads_at(self, prio):
        """Snapshot (list) of threads queued at ``prio``, head first."""
        self._check_prio(prio)
        return list(self._levels[prio])
