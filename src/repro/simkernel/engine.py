"""Discrete-event engine: simulated clock plus a cancellable event queue.

The engine is deliberately tiny and generic — everything scheduling-related
lives in :mod:`repro.simkernel.kernel`.  Events are ordered by
``(time, priority, sequence)``; the sequence number makes simultaneous
events deterministic (FIFO among equals), which the reproduction relies on:
e.g. all 228 optional-deadline timers firing at the same instant must be
processed in a stable order for results to be repeatable.
"""

import heapq


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule_at` /
    :meth:`Engine.schedule_after` and can be cancelled with
    :meth:`Engine.cancel`.  Cancellation is lazy: the heap entry stays in
    place and is skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time, priority, seq, callback):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} {state}>"


class Engine:
    """Simulated clock and event loop.

    :param start_time: initial value of the simulated clock, nanoseconds.
    """

    def __init__(self, start_time=0.0):
        self.now = float(start_time)
        self._heap = []
        self._seq = 0
        self._events_processed = 0

    @property
    def events_processed(self):
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_processed

    @property
    def pending_count(self):
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule_at(self, time, callback, priority=0):
        """Schedule ``callback()`` at absolute simulated ``time``.

        ``time`` must not be in the past.  ``priority`` breaks ties among
        events at the same instant (lower runs first); the kernel uses it
        to e.g. process timer expiries before thread wake-ups scheduled at
        the same timestamp.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before now ({self.now})"
            )
        self._seq += 1
        event = Event(float(time), priority, self._seq, callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay, callback, priority=0):
        """Schedule ``callback()`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback, priority=priority)

    def cancel(self, event):
        """Cancel a pending event.  Cancelling twice is a no-op."""
        event.cancelled = True

    def peek_time(self):
        """Return the time of the next pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self):
        """Execute the next pending event.  Return ``False`` if none left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise RuntimeError(
                    f"event time {event.time} behind clock {self.now}"
                )
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        :param until: stop once the clock would pass this time (the clock
            is advanced to ``until`` if the queue outlives it).
        :param max_events: safety valve against runaway simulations.
        :returns: number of events executed by this call.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            next_time = self.peek_time()
            if next_time is None:
                if until is not None and until > self.now:
                    self.now = float(until)
                return executed
            if until is not None and next_time > until:
                self.now = float(until)
                return executed
            self.step()
            executed += 1
