"""Compatibility shim — the discrete-event engine moved to
:mod:`repro.engine.events`.

The engine is shared by the kernel DES and the theory-level schedule
simulator; it lives in the :mod:`repro.engine` package together with the
ready-queue structures and the pluggable scheduling classes.  This
module keeps the historical ``repro.simkernel.engine`` import path
working.
"""

from repro.engine.events import Engine, Event

__all__ = ["Engine", "Event"]
