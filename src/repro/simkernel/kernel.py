"""The simulated kernel: dispatch, preemption, syscalls, signals.

Execution model
---------------

Each :class:`~repro.simkernel.thread.KernelThread` wraps a generator that
``yield``\\ s syscall requests.  The kernel keeps, per CPU (hardware
thread), a :class:`~repro.simkernel.runqueue.FifoRunQueue` and a pointer to
the currently running thread.  Scheduling decisions are deferred through
the event queue (a ``need_resched``-style flag per CPU), which keeps event
ordering deterministic and models the fact that on real Linux a wake-up on
another CPU takes effect at the next scheduling point, not instantly.

``Compute`` requests are the only *divisible* work: they can be preempted,
slowed down by SMT sharing (all computing hardware threads of a core split
the core's throughput, see :class:`~repro.simkernel.cpu.Core`), and
interrupted by signal delivery.  Everything else is instantaneous apart
from micro-costs charged through the installed
:class:`~repro.simkernel.costmodel.CostModel`.

Background load (the paper's CPU load / CPU-Memory load) is declarative:
hardware threads flagged ``background_busy`` consume pipeline share
whenever no simulated thread occupies them, without generating events.
"""

from collections import deque
from functools import partial
from operator import attrgetter

from repro.engine.backend import get_backend
from repro.engine.classes import get_sched_class
from repro.obs.bus import ProbeBus
from repro.simkernel.costmodel import ZeroCostModel
from repro.simkernel.errors import (
    DeadlockError,
    SchedulingError,
    SignalUnwind,
    SyscallError,
)
from repro.simkernel.signals import (
    SIG_DFL,
    SIG_IGN,
    CallbackDisposition,
    UnwindDisposition,
)
from repro.simkernel.syscalls import (
    ClockNanosleep,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Exit,
    GetCpu,
    GetTime,
    MutexLock,
    MutexUnlock,
    SchedSetAffinity,
    SchedSetScheduler,
    SchedYield,
    SetSignalMask,
    Sigaction,
    Spawn,
    TimerSettime,
)
from repro.simkernel.thread import KernelThread, SchedPolicy, ThreadState

#: Event priority for deferred scheduling decisions (runs after timer
#: expiries queued at the same instant, so a timer posted "now" is visible
#: to the dispatch decision).
_RESCHED_EVENT_PRIO = 5

#: Safety valve: maximum zero-cost syscalls processed in one burst before
#: the kernel forces a trip through the event queue.
_MAX_SYNC_STEPS = 100_000

#: Deterministic repricing order for SMT rate sharing.
_by_tid = attrgetter("tid")

#: Enum members hoisted to module level: the resume/compute cycle tests
#: thread state on every event, and the attribute chain
#: ``ThreadState.RUNNING`` costs two dict lookups per test.
_RUNNING = ThreadState.RUNNING
_READY = ThreadState.READY
_FIFO = SchedPolicy.FIFO


class Kernel:
    """A simulated machine: topology + event engine + scheduler state.

    :param topology: the :class:`~repro.simkernel.cpu.Topology` to run on.
    :param cost_model: a :class:`~repro.simkernel.costmodel.CostModel`;
        defaults to :class:`~repro.simkernel.costmodel.ZeroCostModel`.
    :param engine: optionally share an :class:`~repro.engine.events.Engine`.
    :param sched_class: the real-time scheduling class dispatch goes
        through — a :class:`~repro.engine.classes.SchedClass` instance or
        registry name.  Defaults to SCHED_FIFO
        (:class:`~repro.engine.classes.Fifo99Class`), which is what the
        paper's middleware relies on; the kernel itself contains no
        priority-ordering logic.
    :param probe_bus: optionally share a
        :class:`~repro.obs.bus.ProbeBus`; a fresh (idle) bus is created
        otherwise and wired into the engine and run queues, so
        observers attach with zero setup and an unobserved run pays one
        boolean test per probe site.
    :param backend: an :class:`~repro.engine.backend.EngineBackend`
        (or registry name, or ``None`` for the process default) that
        supplies the event engine and run-queue structures.  The
        ``fast`` backend is byte-identical to ``reference`` on seeded
        runs (``repro check --engine-diff``) but ~2x faster.  Ignored
        for the engine when an explicit ``engine`` is shared.
    """

    def __init__(self, topology, cost_model=None, engine=None,
                 sched_class=None, probe_bus=None, backend=None):
        self.topology = topology
        self.backend = get_backend(backend)
        self.cost_model = cost_model or ZeroCostModel()
        self.engine = engine or self.backend.make_engine()
        self.probes = probe_bus if probe_bus is not None \
            else ProbeBus(clock=self.engine)
        if self.probes.clock is None:
            self.probes.clock = self.engine
        if self.engine.probes is None:
            self.engine.probes = self.probes
        self.sched_class = get_sched_class(sched_class or "fifo")
        n = topology.n_cpus
        self.runqueues = [
            self.sched_class.make_queue(cpu, backend=self.backend)
            for cpu in range(n)
        ]
        for runqueue in self.runqueues:
            runqueue.probes = self.probes
        self.other_queues = [deque() for _ in range(n)]
        self.current = [None] * n
        self.threads = []
        #: when each CPU last became free of simulated threads — i.e. when
        #: background load (if flagged) resumed there.  Cost models use
        #: this to price contention against *warm* (long-running) vs
        #: *cold* (freshly resumed) background tasks.
        self.background_resume_time = [float("-inf")] * n
        self._last_running = [None] * n
        self._resched_pending = [False] * n
        #: per-CPU deferred-schedule callbacks, allocated once — resched
        #: is the most frequently scheduled event, so the per-request
        #: ``partial`` allocation is hoisted out of the hot path.
        self._resched_cbs = [
            partial(self._do_schedule, cpu) for cpu in range(n)
        ]
        #: incrementally maintained count of CPUs running a SCHED_FIFO
        #: thread (see :attr:`nr_running`); updated at the only three
        #: places occupancy or policy changes (:meth:`_dispatch`,
        #: :meth:`_vacate_cpu`, :meth:`_sys_setscheduler`).
        self._nr_running_fifo = 0
        self._core_computing = [set() for _ in range(topology.n_cores)]
        #: per-CPU core objects, resolved once — ``topology.core_of``
        #: is called on every compute start/stop and the indirection
        #: was a measurable slice of the hot path.
        self._cpu_core = [topology.core_of(cpu) for cpu in range(n)]
        #: per-core ``(n_computing, n_background) -> rate`` memo.
        #: ``Core.rate_for`` is pure in its arguments given a fixed core
        #: speed, so the memo is exact; :meth:`set_core_speed` (the only
        #: runtime speed mutation) drops the affected core's entries.
        self._rate_cache = [{} for _ in range(topology.n_cores)]
        #: dedicated memo slot for the dominant ``(1, 0)`` case — a lone
        #: computing thread on a core with no background flags — so the
        #: per-compute rate lookup is a list index, no tuple key.
        self._rate1 = [None] * topology.n_cores
        #: (tid, signum) -> post time, for signal-delivery-latency probes
        #: (maintained only while the bus has subscribers).
        self._signal_posted = {}
        #: optional observer: callable(event_name, thread, time) for traces.
        self.on_event = None
        #: optional fault-injection hooks (duck-typed — see
        #: :class:`repro.faults.injectors.FaultInjector`).  ``None`` (the
        #: default) keeps every hook site to a single attribute test, the
        #: same zero-overhead pattern as the probe bus.
        self.faults = None
        #: currently armed :class:`~repro.simkernel.timers.KTimer`
        #: objects — maintained at arm/disarm/expire (O(1) set ops) so
        #: diagnostics (the flight recorder's kernel summary) can list
        #: pending timers without scanning threads.
        self.armed_timers = set()
        #: per-kernel tid counter, assigned at :meth:`spawn` so two
        #: same-seed kernels in one process emit byte-identical probe
        #: streams (a process-global counter would skew the second run).
        self._next_tid = 1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self.engine.now

    @property
    def nr_running(self):
        """Number of CPUs currently executing a SCHED_FIFO thread.

        Cost models use this as dispatch pressure: with hundreds of
        just-woken real-time threads active, scheduler bookkeeping and
        run-queue cache lines are hot and context switches cost more.
        Maintained incrementally — it is read on every context switch,
        and an O(n_cpus) scan there dominated dispatch on wide
        topologies.
        """
        return self._nr_running_fifo

    def spawn(self, thread):
        """Register and start a thread (it becomes READY immediately)."""
        if thread.state is not ThreadState.NEW:
            raise SchedulingError(f"{thread!r} already started")
        self._check_cpu(thread.cpu)
        thread.tid = self._next_tid
        self._next_tid += 1
        thread.materialize()
        # Pre-bind the per-thread event callbacks once: completion,
        # wake-after-latency and sleep-expiry are (re)scheduled on every
        # job of every thread, and the per-schedule ``partial``
        # allocations were a measurable slice of the hot path.
        thread._complete_cb = partial(self._complete_work, thread)
        thread._ready_cb = partial(self._make_ready, thread)
        thread._sleep_expire_cb = partial(self._sleep_expire, thread)
        self.threads.append(thread)
        self._emit("spawn", thread)
        self._make_ready(thread)
        return thread

    def create_thread(self, name, body, cpu=0, priority=1,
                      policy=SchedPolicy.FIFO):
        """Convenience: construct a :class:`KernelThread` and spawn it."""
        thread = KernelThread(name, body, cpu=cpu, priority=priority,
                              policy=policy)
        return self.spawn(thread)

    def run(self, until=None, max_events=None):
        """Drain events (optionally bounded); returns events executed."""
        return self.engine.run(until=until, max_events=max_events)

    def run_to_completion(self, max_events=None):
        """Run until every spawned thread terminated.

        Raises :class:`DeadlockError` with a diagnosis if the event queue
        drains while threads are still blocked or ready.
        """
        self.engine.run(max_events=max_events)
        stuck = [t for t in self.threads if t.alive]
        if stuck:
            detail = "; ".join(
                f"{t.name}({t.state.value}, on={t.blocked_on!r})" for t in stuck
            )
            raise DeadlockError(
                f"event queue drained with {len(stuck)} live thread(s): {detail}",
                blocked_threads=stuck,
            )

    def post_signal(self, thread, signum):
        """Post a signal to ``thread`` (kernel-side entry point).

        The installed fault hooks may *drop* the post entirely or
        *delay* it (the hooks re-post through :meth:`post_signal_direct`
        so a delayed signal is not intercepted twice).
        """
        if self.faults is not None and \
                not self.faults.allow_signal_post(thread, signum):
            return
        self.post_signal_direct(thread, signum)

    def post_signal_direct(self, thread, signum):
        """Post a signal bypassing the fault hooks (delayed re-posts)."""
        if not thread.alive:
            return
        disposition = thread.signal_handlers.get(signum, SIG_DFL)
        if disposition == SIG_IGN:
            return
        if self.probes.active:
            self._signal_posted[(thread.tid, signum)] = self.engine.now
            self._emit("signal_post", thread, signum=signum)
        if signum in thread.signal_mask:
            thread.pending_signals.append(signum)
            self._emit("signal_blocked", thread)
            return
        self._deliver_signal(thread, signum, disposition)

    def kill(self, thread):
        """Forcefully terminate a thread (cleans up whatever it holds)."""
        if not thread.alive:
            return
        self._detach_from_wait_objects(thread)
        if thread.state is ThreadState.RUNNING:
            if thread.is_computing:
                self._stop_compute(thread)
            self._vacate_cpu(thread.cpu)
            self._core_changed(self._cpu_core[thread.cpu])
            self._request_resched(thread.cpu)
        elif thread.state is ThreadState.READY:
            self._dequeue_ready(thread)
        if thread.gen is not None:
            thread.gen.close()
        thread.state = ThreadState.TERMINATED
        self._emit("thread_exit", thread)

    def spurious_wakeup(self, cond, thread):
        """Wake ``thread`` from ``cond`` without any signal/broadcast.

        POSIX explicitly permits spurious wakeups from
        ``pthread_cond_wait``; correct code re-checks its predicate in a
        loop (Mesa semantics).  The fault injector uses this entry point
        to prove the middleware's wait loops actually do.  Returns True
        iff the thread was woken (False when it is no longer waiting on
        ``cond`` — the race resolved itself first).
        """
        if not thread.alive or thread.blocked_on is not cond:
            return False
        mutex = None
        for entry in list(cond.waiters):
            if entry[0] is thread:
                mutex = entry[1]
                cond.waiters.remove(entry)
                break
        if mutex is None:
            return False
        # exactly the re-acquire path a signalled waiter takes
        if mutex.owner is None:
            self._mutex_acquire(thread, mutex, contended=False)
            self._wake_after_latency(thread)
        else:
            mutex.waiters.append(thread)
            thread.blocked_on = mutex
        return True

    def force_unwind(self, thread, signum=None):
        """Terminate a thread's current (optional) part *regardless of
        its signal mask* — the overrun watchdog's last resort.

        Models a supervisor forcibly cancelling an optional part whose
        termination strategy failed (Table I's C++ ``try``/``catch`` row
        leaves ``SIGALRM`` masked, so the regular timer path can never
        stop the next overrun).  Delivery always restores the mask: the
        watchdog repairs the wedged state so subsequent jobs' timers
        fire again.  Returns True iff an unwind was delivered.
        """
        if not thread.alive:
            return False
        from repro.simkernel.signals import SIGALRM
        if signum is None:
            signum = SIGALRM
        # drop any queued instance so the unwind is not doubled later
        while signum in thread.pending_signals:
            thread.pending_signals.remove(signum)
        thread.signal_mask.discard(signum)
        self._deliver_signal(
            thread, signum, UnwindDisposition(restore_mask=True),
            forced=True,
        )
        return True

    def set_core_speed(self, core_id, speed):
        """Change a core's throughput and reprice in-flight compute.

        The fault injector uses this for transient per-core throttle
        windows (thermal stall, frequency capping): every computing
        thread on the core has its completion event recomputed at the
        new rate, deterministically.
        """
        if speed <= 0:
            raise SchedulingError(f"core speed must be positive: {speed}")
        core = self.topology.cores[core_id]
        core.speed = speed
        self._rate_cache[core_id].clear()
        self._rate1[core_id] = None
        self._recompute_core(core)

    # ------------------------------------------------------------------
    # readiness and dispatch
    # ------------------------------------------------------------------

    def _check_cpu(self, cpu):
        if not 0 <= cpu < self.topology.n_cpus:
            raise SchedulingError(f"CPU {cpu} out of range")

    def _emit(self, name, thread, **extra):
        """Publish a thread-lifecycle event to the legacy ``on_event``
        hook and (as ``kernel.<name>`` with a uniform thread/tid/cpu/prio
        payload plus ``extra``) to the probe bus."""
        if self.on_event is not None:
            self.on_event(name, thread, self.engine.now)
        probes = self.probes
        if probes.active:
            probes.publish("kernel." + name, thread=thread.name,
                           tid=thread.tid, cpu=thread.cpu,
                           prio=thread.priority, **extra)

    def _vacate_cpu(self, cpu):
        """Mark a CPU free of simulated threads (background resumes)."""
        thread = self.current[cpu]
        if thread is not None and thread.policy is _FIFO:
            self._nr_running_fifo -= 1
        self.current[cpu] = None
        self.background_resume_time[cpu] = self.engine.now

    def _make_ready(self, thread, at_head=False):
        if not thread.alive:
            return
        thread.state = _READY
        thread.blocked_on = None
        if thread.policy is _FIFO:
            self.sched_class.enqueue(
                self.runqueues[thread.cpu], thread, at_head=at_head
            )
        else:
            queue = self.other_queues[thread.cpu]
            if at_head:
                queue.appendleft(thread)
            else:
                queue.append(thread)
        self._emit("ready", thread)
        self._request_resched(thread.cpu)

    def _dequeue_ready(self, thread):
        if thread.policy is _FIFO:
            self.sched_class.dequeue(self.runqueues[thread.cpu], thread)
        else:
            self.other_queues[thread.cpu].remove(thread)

    def _request_resched(self, cpu):
        if self._resched_pending[cpu]:
            return
        self._resched_pending[cpu] = True
        self.engine.schedule_at(
            self.engine.now,
            self._resched_cbs[cpu],
            priority=_RESCHED_EVENT_PRIO,
        )

    def _do_schedule(self, cpu):
        self._resched_pending[cpu] = False
        current = self.current[cpu]
        runqueue = self.runqueues[cpu]
        if current is None:
            if runqueue or self.other_queues[cpu]:
                self._dispatch(cpu)
            return
        # SCHED_OTHER never preempts (pseudo-priority 0 vs 0 or below an
        # RT level); the RT class decides everything else.
        if self.sched_class.check_preempt(runqueue, current):
            self._preempt(cpu)
            self._dispatch(cpu)

    def _preempt(self, cpu):
        thread = self.current[cpu]
        if thread.is_computing:
            self._stop_compute(thread)
        thread.state = _READY
        thread.preemptions += 1
        self._vacate_cpu(cpu)
        if thread.policy is _FIFO:
            # SCHED_FIFO: a preempted thread returns to the *head* of its
            # priority level so it resumes before equal-priority peers.
            self.sched_class.enqueue(self.runqueues[cpu], thread,
                                     at_head=True)
        else:
            self.other_queues[cpu].appendleft(thread)
        self._core_changed(self._cpu_core[cpu])
        self._emit("preempt", thread)

    def _dispatch(self, cpu):
        thread = self.sched_class.pick_next(self.runqueues[cpu])
        if thread is None:
            if self.other_queues[cpu]:
                thread = self.other_queues[cpu].popleft()
            else:
                return
        thread.state = _RUNNING
        self.current[cpu] = thread
        if thread.policy is _FIFO:
            self._nr_running_fifo += 1
        thread.dispatches += 1
        switch_cost = self.cost_model.context_switch(
            cpu, self._last_running[cpu], thread, self
        )
        self._last_running[cpu] = thread
        self._core_changed(self._cpu_core[cpu])
        self._emit("dispatch", thread)
        if switch_cost > 0:
            thread.latency_remaining += switch_cost
        if thread.has_pending_execution:
            self._start_compute(thread)
        else:
            self._resume(thread)

    # ------------------------------------------------------------------
    # compute / SMT rate sharing
    # ------------------------------------------------------------------

    def _charge(self, thread):
        now = self.engine.now
        elapsed = now - thread.last_charge
        if elapsed > 0:
            # latency burns first, at wall rate (SMT-immune)
            latency = thread.latency_remaining
            if elapsed < latency:
                thread.latency_remaining = latency - elapsed
            else:
                thread.latency_remaining = 0.0
                remainder = elapsed - latency
                if remainder > 0 and thread.rate > 0:
                    left = thread.work_remaining \
                        - remainder * thread.rate
                    thread.work_remaining = left if left > 0.0 else 0.0
            thread.cpu_time += elapsed
        thread.last_charge = now

    def _start_compute(self, thread):
        core = self._cpu_core[thread.cpu]
        computing = self._core_computing[core.core_id]
        engine = self.engine
        now = engine.now
        thread.last_charge = now
        computing.add(thread)
        if len(computing) > 1:
            self._recompute_core(core)
            return
        # lone computing thread (the common case without SMT sharing):
        # the generic repricing loop collapses to charging *this* thread
        # (elapsed is zero — last_charge was just stamped) and pricing
        # its completion, so inline it
        if not core.n_background_flagged:
            cid = core.core_id
            rate = self._rate1[cid]
            if rate is None:
                rate = self._rate1[cid] = core.rate_for(1, 0)
        else:
            key = (1, self._background_count(core))
            cache = self._rate_cache[core.core_id]
            rate = cache.get(key)
            if rate is None:
                rate = cache[key] = core.rate_for(*key)
        thread.rate = rate
        if thread.completion_event is not None:
            engine.cancel(thread.completion_event)
        finish = (now + thread.latency_remaining
                  + thread.work_remaining / rate)
        thread.completion_event = engine.schedule_at(
            finish, thread._complete_cb
        )

    def _stop_compute(self, thread):
        if thread.completion_event is not None:
            self.engine.cancel(thread.completion_event)
            thread.completion_event = None
        self._charge(thread)
        thread.rate = 0.0
        core = self._cpu_core[thread.cpu]
        computing = self._core_computing[core.core_id]
        computing.discard(thread)
        if computing:
            self._recompute_core(core)

    def _core_changed(self, core):
        """Occupancy (running / background-visible) changed on ``core``."""
        if self._core_computing[core.core_id]:
            self._recompute_core(core)

    def _background_count(self, core):
        if not core.n_background_flagged:
            return 0
        count = 0
        current = self.current
        for hw_thread in core.hw_threads:
            if hw_thread._background_busy and current[hw_thread.cpu_id] is None:
                count += 1
        return count

    def _recompute_core(self, core):
        computing = self._core_computing[core.core_id]
        if not computing:
            return
        engine = self.engine
        now = engine.now
        key = (len(computing), self._background_count(core))
        cache = self._rate_cache[core.core_id]
        rate = cache.get(key)
        if rate is None:
            rate = cache[key] = core.rate_for(*key)
        # tid order keeps repricing deterministic; a one-element set (the
        # overwhelmingly common case without SMT sharing) needs no sort
        threads = computing if len(computing) == 1 \
            else sorted(computing, key=_by_tid)
        for thread in threads:
            elapsed = now - thread.last_charge
            if elapsed > 0:
                latency = thread.latency_remaining
                if elapsed < latency:
                    thread.latency_remaining = latency - elapsed
                else:
                    thread.latency_remaining = 0.0
                    remainder = elapsed - latency
                    if remainder > 0 and thread.rate > 0:
                        left = thread.work_remaining \
                            - remainder * thread.rate
                        thread.work_remaining = left if left > 0.0 else 0.0
                thread.cpu_time += elapsed
            thread.last_charge = now
            thread.rate = rate
            if thread.completion_event is not None:
                engine.cancel(thread.completion_event)
            finish = (now + thread.latency_remaining
                      + thread.work_remaining / rate)
            thread.completion_event = engine.schedule_at(
                finish, thread._complete_cb
            )

    def _complete_work(self, thread):
        thread.completion_event = None
        # charge, inlined: work/latency are zeroed next, so only the
        # cpu_time accumulation and last_charge stamp survive
        now = self.engine.now
        elapsed = now - thread.last_charge
        if elapsed > 0:
            thread.cpu_time += elapsed
        thread.last_charge = now
        thread.work_remaining = 0.0
        thread.latency_remaining = 0.0
        thread.rate = 0.0
        core = self._cpu_core[thread.cpu]
        computing = self._core_computing[core.core_id]
        computing.discard(thread)
        if computing:
            self._recompute_core(core)
        self._resume(thread)

    # ------------------------------------------------------------------
    # the resume loop
    # ------------------------------------------------------------------

    def _resume(self, thread):
        """Advance a RUNNING thread's coroutine until it blocks/computes."""
        steps = 0
        current = self.current
        while (
            thread.state is _RUNNING
            and current[thread.cpu] is thread
        ):
            if thread.pending_signals:
                self._deliver_pending(thread)
            if thread.work_remaining > 0 or thread.latency_remaining > 0:
                self._start_compute(thread)
                return
            steps += 1
            if steps > _MAX_SYNC_STEPS:
                raise SyscallError(
                    f"{thread.name!r} issued {_MAX_SYNC_STEPS} zero-cost "
                    f"syscalls without consuming time (runaway loop?)"
                )
            try:
                if thread.resume_exception is not None:
                    exc = thread.resume_exception
                    thread.resume_exception = None
                    thread.resume_value = None
                    request = thread.gen.throw(exc)
                else:
                    value = thread.resume_value
                    thread.resume_value = None
                    request = thread.gen.send(value)
            except StopIteration:
                self._exit_thread(thread)
                return
            except SignalUnwind:
                # The unwind escaped the whole thread body: the thread dies
                # (a longjmp past main); treat as a clean exit for tests.
                self._exit_thread(thread)
                return
            if not self._handle_syscall(thread, request):
                return

    def _exit_thread(self, thread):
        cpu = thread.cpu
        thread.state = ThreadState.TERMINATED
        if self.current[cpu] is thread:
            self._vacate_cpu(cpu)
        self._detach_from_wait_objects(thread)
        self._core_changed(self._cpu_core[cpu])
        self._request_resched(cpu)
        self._emit("thread_exit", thread)

    def _block(self, thread, blocked_on):
        cpu = thread.cpu
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = blocked_on
        if self.current[cpu] is thread:
            self._vacate_cpu(cpu)
        self._core_changed(self._cpu_core[cpu])
        self._request_resched(cpu)
        self._emit("block", thread)

    def _charge_syscall_cost(self, thread, cost, result=None):
        """Finish a syscall whose effect is done but that costs time."""
        thread.resume_value = result
        if cost > 0:
            thread.latency_remaining += cost
            self._start_compute(thread)
            return False  # loop exits; completion event resumes
        return (thread.state is _RUNNING
                and self.current[thread.cpu] is thread)

    def _still_running(self, thread):
        return (
            thread.state is _RUNNING
            and self.current[thread.cpu] is thread
        )

    # ------------------------------------------------------------------
    # syscall processing
    # ------------------------------------------------------------------

    def _handle_syscall(self, thread, request):
        """Apply ``request``.  Returns True iff the resume loop continues.

        Dispatch is a ``type(request)`` dict lookup (the syscall types
        are leaf classes in practice); unknown exact types — e.g. a test
        subclassing a syscall — fall back to the isinstance chain in
        :meth:`_handle_syscall_generic`.  Both paths price the request
        through ``cost_model.syscall`` at the same point, so the noise
        stream is consumed in the same order whichever path runs.
        """
        rtype = type(request)
        if rtype is Compute:
            thread.work_remaining += request.work
            thread.resume_value = None
            if thread.work_remaining > 0 or thread.latency_remaining > 0:
                self._start_compute(thread)
                return False
            return (thread.state is _RUNNING
                    and self.current[thread.cpu] is thread)
        handler = _SYSCALL_HANDLERS.get(rtype)
        if handler is not None:
            # bound lookup by name (not a stored function) so class-level
            # monkeypatching — the mutation-smoke tests plant bugs that
            # way — still takes effect
            return getattr(self, handler)(
                thread, request,
                self.cost_model.syscall(request, thread, self),
            )
        return self._handle_syscall_generic(thread, request)

    def _sys_get_time(self, thread, request, cost):
        return self._charge_syscall_cost(thread, cost, self.engine.now)

    def _sys_get_cpu(self, thread, request, cost):
        return self._charge_syscall_cost(thread, cost, thread.cpu)

    def _sys_cond_wait_costed(self, thread, request, cost):
        # CondWait is priced like every syscall (the draw keeps the noise
        # stream aligned) but the cost lands on the wake-up path instead
        return self._sys_cond_wait(thread, request)

    def _sys_sigaction(self, thread, request, cost):
        thread.signal_handlers[request.signum] = request.disposition
        return self._charge_syscall_cost(thread, cost)

    def _sys_sched_yield_costed(self, thread, request, cost):
        return self._sys_sched_yield(thread, cost)

    def _sys_spawn(self, thread, request, cost):
        self.spawn(request.thread)
        return self._charge_syscall_cost(thread, cost, request.thread)

    def _sys_exit(self, thread, request, cost):
        self._exit_thread(thread)
        return False

    def _handle_syscall_generic(self, thread, request):
        """isinstance-chain fallback for syscall subclasses."""
        if isinstance(request, Compute):
            thread.work_remaining += request.work
            thread.resume_value = None
            if thread.work_remaining > 0 or thread.latency_remaining > 0:
                self._start_compute(thread)
                return False
            return (thread.state is _RUNNING
                    and self.current[thread.cpu] is thread)

        base_cost = self.cost_model.syscall(request, thread, self)

        if isinstance(request, GetTime):
            return self._charge_syscall_cost(thread, base_cost, self.engine.now)

        if isinstance(request, GetCpu):
            return self._charge_syscall_cost(thread, base_cost, thread.cpu)

        if isinstance(request, ClockNanosleep):
            return self._sys_clock_nanosleep(thread, request, base_cost)

        if isinstance(request, CondWait):
            return self._sys_cond_wait(thread, request)

        if isinstance(request, CondSignal):
            return self._sys_cond_signal(thread, request, base_cost)

        if isinstance(request, CondBroadcast):
            return self._sys_cond_broadcast(thread, request, base_cost)

        if isinstance(request, MutexLock):
            return self._sys_mutex_lock(thread, request, base_cost)

        if isinstance(request, MutexUnlock):
            return self._sys_mutex_unlock(thread, request, base_cost)

        if isinstance(request, TimerSettime):
            return self._sys_timer_settime(thread, request, base_cost)

        if isinstance(request, Sigaction):
            thread.signal_handlers[request.signum] = request.disposition
            return self._charge_syscall_cost(thread, base_cost)

        if isinstance(request, SetSignalMask):
            return self._sys_set_signal_mask(thread, request, base_cost)

        if isinstance(request, SchedSetScheduler):
            return self._sys_setscheduler(thread, request, base_cost)

        if isinstance(request, SchedSetAffinity):
            return self._sys_setaffinity(thread, request, base_cost)

        if isinstance(request, SchedYield):
            return self._sys_sched_yield(thread, base_cost)

        if isinstance(request, Spawn):
            self.spawn(request.thread)
            return self._charge_syscall_cost(thread, base_cost, request.thread)

        if isinstance(request, Exit):
            self._exit_thread(thread)
            return False

        raise SyscallError(
            f"{thread.name!r} yielded unsupported request {request!r}"
        )

    def _sys_clock_nanosleep(self, thread, request, cost):
        if request.until <= self.engine.now:
            return self._charge_syscall_cost(thread, cost)
        thread.resume_value = None
        self._block(thread, ("sleep", request.until))
        thread.sleep_event = self.engine.schedule_at(
            request.until, thread._sleep_expire_cb
        )
        return False

    def _sleep_expire(self, thread):
        thread.sleep_event = None
        if thread.state is not ThreadState.BLOCKED:
            return
        self._emit("sleep_expire", thread)
        latency = self.cost_model.wakeup_latency(thread, self, kind="sleep")
        if latency > 0:
            self.engine.schedule_after(latency, thread._ready_cb)
        else:
            self._make_ready(thread)

    def _sys_cond_wait(self, thread, request):
        mutex = request.mutex
        if mutex.owner is not thread:
            raise SyscallError(
                f"{thread.name!r} called cond_wait on {request.cond.name} "
                f"without holding {mutex.name}"
            )
        self._mutex_release(thread, mutex)
        request.cond.waiters.append((thread, mutex))
        self._block(thread, request.cond)
        if self.faults is not None:
            # the hooks may schedule a spurious wakeup for this waiter
            self.faults.on_cond_block(request.cond, thread)
        return False

    def _wake_cond_waiter(self, cond):
        """Pop and wake one waiter of ``cond``; returns it or None."""
        if not cond.waiters:
            return None
        woken, mutex = cond.waiters.popleft()
        # The waiter must re-acquire the mutex before cond_wait returns.
        if mutex.owner is None:
            self._mutex_acquire(woken, mutex, contended=False)
            self._wake_after_latency(woken)
        else:
            mutex.waiters.append(woken)
            woken.blocked_on = mutex
        return woken

    def _sys_cond_signal(self, thread, request, base_cost):
        woken = self._wake_cond_waiter(request.cond)
        cost = base_cost + self.cost_model.cond_signal(thread, woken, self)
        self._emit("cond_signal", thread)
        return self._charge_syscall_cost(thread, cost, 1 if woken else 0)

    def _sys_cond_broadcast(self, thread, request, base_cost):
        count = 0
        cost = base_cost
        while request.cond.waiters:
            woken = self._wake_cond_waiter(request.cond)
            cost += self.cost_model.cond_signal(thread, woken, self)
            count += 1
        self._emit("cond_broadcast", thread)
        return self._charge_syscall_cost(thread, cost, count)

    def _wake_after_latency(self, thread):
        latency = self.cost_model.wakeup_latency(thread, self, kind="sync")
        if latency > 0:
            self.engine.schedule_after(latency, thread._ready_cb)
        else:
            self._make_ready(thread)

    def _mutex_acquire(self, thread, mutex, contended):
        mutex.owner = thread
        handoff = self.cost_model.mutex_handoff(
            mutex, mutex.last_owner_cpu, thread.cpu, contended, self
        )
        if handoff > 0:
            # Cache-line transfer: charged to the acquirer as latency the
            # next time it runs.
            thread.latency_remaining += handoff

    def _mutex_release(self, thread, mutex):
        mutex.last_owner_cpu = thread.cpu
        if mutex.boosted_from is not None:
            # PTHREAD_PRIO_INHERIT: drop back to the pre-boost priority.
            boosted_prio = thread.priority
            thread.priority = mutex.boosted_from
            mutex.boosted_from = None
            self._emit("prio_restore", thread, old_prio=boosted_prio)
            if thread.state is ThreadState.RUNNING:
                self._request_resched(thread.cpu)
        if mutex.waiters:
            next_owner = mutex.waiters.popleft()
            self._mutex_acquire(next_owner, mutex, contended=True)
            self._wake_after_latency(next_owner)
        else:
            mutex.owner = None

    def _boost_owner(self, mutex, waiter):
        """Priority inheritance: raise the owner to the waiter's level."""
        owner = mutex.owner
        if owner is None or owner.policy is not SchedPolicy.FIFO:
            return
        if waiter.priority <= owner.priority:
            return
        if mutex.boosted_from is None:
            mutex.boosted_from = owner.priority
        old_prio = owner.priority
        if owner.state is ThreadState.READY:
            # requeue discipline: urgency changed, so remove at the old
            # priority and re-enqueue at the boosted one
            self.sched_class.dequeue(self.runqueues[owner.cpu], owner)
            owner.priority = waiter.priority
            self.sched_class.enqueue(self.runqueues[owner.cpu], owner)
            self._emit("prio_boost", owner, old_prio=old_prio,
                       waiter=waiter.name)
            self._request_resched(owner.cpu)
        else:
            owner.priority = waiter.priority
            self._emit("prio_boost", owner, old_prio=old_prio,
                       waiter=waiter.name)

    def _sys_mutex_lock(self, thread, request, cost):
        mutex = request.mutex
        if mutex.owner is None:
            self._mutex_acquire(thread, mutex, contended=False)
            return self._charge_syscall_cost(thread, cost)
        if mutex.owner is thread:
            raise SyscallError(
                f"{thread.name!r} relocking non-recursive {mutex.name}"
            )
        if mutex.protocol == "inherit":
            self._boost_owner(mutex, thread)
        thread.resume_value = None
        mutex.waiters.append(thread)
        self._block(thread, mutex)
        return False

    def _sys_mutex_unlock(self, thread, request, cost):
        mutex = request.mutex
        if mutex.owner is not thread:
            raise SyscallError(
                f"{thread.name!r} unlocking {mutex.name} it does not own"
            )
        self._mutex_release(thread, mutex)
        return self._charge_syscall_cost(thread, cost)

    def _sys_timer_settime(self, thread, request, cost):
        timer = request.timer
        if timer.deleted:
            raise SyscallError(f"timer_settime on deleted {timer.name}")
        was_armed = timer.event is not None
        if was_armed:
            self.engine.cancel(timer.event)
            timer.event = None
            timer.expires_at = None
            self.armed_timers.discard(timer)
        if request.at is not None:
            expires = max(request.at, self.engine.now)
            if self.faults is not None:
                # timer drift / late fire: the fault hooks may skew the
                # programmed expiry (never into the past)
                expires = max(self.faults.adjust_timer_expiry(timer, expires),
                              self.engine.now)
            timer.expires_at = expires
            timer.arm_count += 1
            expire_cb = timer._expire_cb
            if expire_cb is None:
                expire_cb = timer._expire_cb = \
                    partial(self._timer_expire, timer)
            timer.event = self.engine.schedule_at(expires, expire_cb)
            self.armed_timers.add(timer)
            if self.probes.active:
                self._emit("timer_arm", thread, timer=timer.name,
                           at=expires)
        elif was_armed and self.probes.active:
            self._emit("timer_disarm", thread, timer=timer.name)
        return self._charge_syscall_cost(thread, cost)

    def _timer_expire(self, timer):
        timer.event = None
        timer.expires_at = None
        self.armed_timers.discard(timer)
        timer.expirations += 1
        timer.last_expired_at = self.engine.now
        self._emit("timer_expire", timer.owner, timer=timer.name,
                   signum=timer.signum, expirations=timer.expirations)
        self.post_signal(timer.owner, timer.signum)

    def _sys_set_signal_mask(self, thread, request, cost):
        thread.signal_mask = set(request.mask)
        # Unblocking may make queued signals deliverable; the resume loop's
        # _deliver_pending picks them up on the next iteration.
        return self._charge_syscall_cost(thread, cost)

    def _sys_setscheduler(self, thread, request, cost):
        old_prio = thread.priority
        was_fifo = thread.policy is SchedPolicy.FIFO
        thread.policy = request.policy
        if self.current[thread.cpu] is thread:
            # keep the incremental nr_running count honest across a
            # policy change of a RUNNING thread
            is_fifo = request.policy is SchedPolicy.FIFO
            self._nr_running_fifo += int(is_fifo) - int(was_fifo)
        if request.policy is SchedPolicy.FIFO:
            min_prio = getattr(self.sched_class, "min_prio", 1)
            max_prio = getattr(self.sched_class, "max_prio", 99)
            if not min_prio <= request.priority <= max_prio:
                raise SchedulingError(
                    f"priority {request.priority} outside FIFO range"
                )
            thread.priority = request.priority
        if self.probes.active:
            # priority-band transitions (HPQ/RTQ/NRTQ) are derived from
            # these by the metrics/export layers
            self._emit("setscheduler", thread, old_prio=old_prio,
                       policy=request.policy.value)
        self._request_resched(thread.cpu)
        return self._charge_syscall_cost(thread, cost)

    def _sys_setaffinity(self, thread, request, cost):
        target = request.thread if request.thread is not None else thread
        self._check_cpu(request.cpu)
        old_cpu = target.cpu
        if old_cpu == request.cpu:
            return self._charge_syscall_cost(thread, cost)
        self._emit("migrate", target, from_cpu=old_cpu,
                   to_cpu=request.cpu)
        if target.state is ThreadState.READY:
            self._dequeue_ready(target)
            target.cpu = request.cpu
            self._make_ready(target)
        elif target.state is ThreadState.RUNNING and target is thread:
            # Migrating self: leave the CPU and requeue on the new one.
            thread.resume_value = None
            if cost > 0:
                thread.latency_remaining += cost
            self._vacate_cpu(old_cpu)
            target.cpu = request.cpu
            self._core_changed(self._cpu_core[old_cpu])
            self._request_resched(old_cpu)
            self._make_ready(target)
            return False
        else:
            # NEW / BLOCKED / RUNNING-elsewhere: takes effect at next wake.
            target.cpu = request.cpu
        return self._charge_syscall_cost(thread, cost)

    def _sys_sched_yield(self, thread, cost):
        cpu = thread.cpu
        thread.resume_value = None
        if cost > 0:
            thread.latency_remaining += cost
        thread.state = ThreadState.READY
        self._vacate_cpu(cpu)
        if thread.policy is SchedPolicy.FIFO:
            self.sched_class.enqueue(self.runqueues[cpu], thread,
                                     at_head=False)
        else:
            self.other_queues[cpu].append(thread)
        self._core_changed(self._cpu_core[cpu])
        self._emit("yield", thread)
        self._request_resched(cpu)
        return False

    # ------------------------------------------------------------------
    # signal delivery
    # ------------------------------------------------------------------

    def _deliver_pending(self, thread):
        if not thread.pending_signals:
            return
        deliverable = [
            s for s in thread.pending_signals if s not in thread.signal_mask
        ]
        if not deliverable:
            return
        signum = deliverable[0]
        thread.pending_signals.remove(signum)
        disposition = thread.signal_handlers.get(signum, SIG_DFL)
        if disposition == SIG_IGN:
            return
        self._deliver_signal(thread, signum, disposition)

    def _deliver_signal(self, thread, signum, disposition, forced=False):
        #: delivery latency (post -> deliver) for the probe bus; popped
        #: for every disposition so the bookkeeping dict cannot grow.
        posted_at = self._signal_posted.pop((thread.tid, signum), None)
        signal_latency = (
            self.engine.now - posted_at if posted_at is not None else None
        )
        if disposition == SIG_DFL:
            raise SyscallError(
                f"signal {signum} with default disposition delivered to "
                f"{thread.name!r} (install a handler or SIG_IGN)"
            )
        if isinstance(disposition, CallbackDisposition):
            disposition.callback(thread, self.engine.now)
            return
        if not isinstance(disposition, UnwindDisposition):
            raise SyscallError(f"unknown disposition {disposition!r}")

        self._emit("signal_deliver", thread, signum=signum,
                   latency=signal_latency, forced=forced)
        if disposition.on_deliver is not None:
            disposition.on_deliver(thread, self.engine.now)

        handler_cost = self.cost_model.timer_handler(thread, self)
        unwind_cost = self.cost_model.unwind(thread, self)
        cost = handler_cost + unwind_cost

        # POSIX blocks the signal while its handler runs; siglongjmp with a
        # saved mask restores it, a plain try/catch unwind does not
        # (Table I: the next job's timer interrupt then never arrives).
        thread.signal_mask.add(signum)
        if disposition.restore_mask:
            thread.signal_mask.discard(signum)

        exception = SignalUnwind(signum, disposition.restore_mask,
                                 forced=forced)

        if thread.state is ThreadState.RUNNING and thread.is_computing:
            # Interrupt the compute: remaining optional work is abandoned
            # (the longjmp never returns to it); only handler+unwind cost
            # remains to execute before the exception surfaces.
            self.engine.cancel(thread.completion_event)
            thread.completion_event = None
            self._charge(thread)
            thread.work_remaining = 0.0
            thread.latency_remaining = cost
            thread.resume_exception = exception
            core = self._cpu_core[thread.cpu]
            self._recompute_core(core)
            return

        thread.resume_exception = exception
        thread.work_remaining = 0.0
        thread.latency_remaining = cost

        if thread.state is ThreadState.RUNNING:
            # Mid-resume-loop: the loop notices resume_exception next turn.
            return
        if thread.state is ThreadState.BLOCKED:
            self._detach_from_wait_objects(thread)
            self._make_ready(thread)
        # READY: fields are set; delivery completes at next dispatch.

    def _detach_from_wait_objects(self, thread):
        """Remove a thread from whatever queue it is blocked on."""
        blocked_on = thread.blocked_on
        if blocked_on is None:
            return
        if isinstance(blocked_on, tuple) and blocked_on[0] == "sleep":
            if thread.sleep_event is not None:
                self.engine.cancel(thread.sleep_event)
                thread.sleep_event = None
        elif hasattr(blocked_on, "waiters"):
            waiters = blocked_on.waiters
            for entry in list(waiters):
                target = entry[0] if isinstance(entry, tuple) else entry
                if target is thread:
                    waiters.remove(entry)
                    break
        thread.blocked_on = None


#: exact-type syscall dispatch (see :meth:`Kernel._handle_syscall`);
#: maps each syscall type to the *name* of a ``Kernel`` method taking
#: ``(thread, request, base_cost)`` with ``base_cost`` already drawn
#: from the cost model.
_SYSCALL_HANDLERS = {
    GetTime: "_sys_get_time",
    GetCpu: "_sys_get_cpu",
    ClockNanosleep: "_sys_clock_nanosleep",
    CondWait: "_sys_cond_wait_costed",
    CondSignal: "_sys_cond_signal",
    CondBroadcast: "_sys_cond_broadcast",
    MutexLock: "_sys_mutex_lock",
    MutexUnlock: "_sys_mutex_unlock",
    TimerSettime: "_sys_timer_settime",
    Sigaction: "_sys_sigaction",
    SetSignalMask: "_sys_set_signal_mask",
    SchedSetScheduler: "_sys_setscheduler",
    SchedSetAffinity: "_sys_setaffinity",
    SchedYield: "_sys_sched_yield_costed",
    Spawn: "_sys_spawn",
    Exit: "_sys_exit",
}
