"""Mutexes and condition variables with POSIX (Mesa) semantics.

These objects hold no logic of their own beyond waiter bookkeeping — the
kernel performs the state transitions.  Waiters queue FIFO, matching the
glibc behaviour the paper's middleware relies on when the mandatory thread
signals each parallel optional thread individually.
"""

from collections import deque


class Mutex:
    """A simulated ``pthread_mutex_t``.

    ``owner`` is the :class:`~repro.simkernel.thread.KernelThread` holding
    the lock; ``waiters`` queue FIFO.  The lock-transfer bookkeeping
    (``last_owner_cpu``) lets the cost model price cross-core lock handoffs
    — the mechanism behind the paper's Figure 13 policy ordering, where
    one-by-one placement bounces the task lock between cores on every
    optional-part epilogue.

    :param protocol: ``"none"`` (default) or ``"inherit"`` —
        ``PTHREAD_PRIO_INHERIT``: while a higher-priority thread waits,
        the owner runs at the waiter's priority, bounding priority
        inversion.  RT-Seed itself never needs it (optional parts are
        forbidden from taking locks, and the task-wide locks are only
        shared between equal-priority threads), but a middleware
        substrate should offer it.
    """

    _next_id = 1

    def __init__(self, name=None, protocol="none"):
        if protocol not in ("none", "inherit"):
            raise ValueError(f"unknown mutex protocol {protocol!r}")
        self.mid = Mutex._next_id
        Mutex._next_id += 1
        self.name = name or f"mutex-{self.mid}"
        self.protocol = protocol
        self.owner = None
        self.waiters = deque()
        #: CPU on which the previous holder ran when it released the lock.
        self.last_owner_cpu = None
        #: owner's original priority while boosted (inherit protocol).
        self.boosted_from = None

    @property
    def locked(self):
        return self.owner is not None

    def __repr__(self):
        owner = self.owner.name if self.owner else None
        return f"<Mutex {self.name} owner={owner} waiters={len(self.waiters)}>"


class CondVar:
    """A simulated ``pthread_cond_t`` with FIFO waiters."""

    _next_id = 1

    def __init__(self, name=None):
        self.cid = CondVar._next_id
        CondVar._next_id += 1
        self.name = name or f"cond-{self.cid}"
        #: FIFO of (thread, mutex) tuples blocked in CondWait.
        self.waiters = deque()

    def __repr__(self):
        return f"<CondVar {self.name} waiters={len(self.waiters)}>"
