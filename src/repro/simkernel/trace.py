"""Structured tracing for the simulated kernel.

:meth:`Tracer.attach` subscribes a :class:`Tracer` to the kernel's
probe bus to collect a timeline of scheduling events (spawn, ready,
dispatch, preempt, block, timer expiry, signal delivery, exit), query
it, and render an ASCII Gantt chart — invaluable when debugging
middleware protocols.  Because it rides the fan-out bus, a tracer
coexists with metrics collectors and trace exporters on the same run
(assigning to the single-callback ``kernel.on_event`` hook still works
but holds exactly one observer).

Usage::

    tracer = Tracer.attach(kernel)
    ... run ...
    print(tracer.gantt(cpu=0, start=0, end=1_000_000))
"""

from collections import Counter, deque


class TraceRecord:
    """One scheduling event.

    ``extra`` carries any event-specific payload beyond the uniform
    thread fields (e.g. ``signum``/``latency`` for signal delivery,
    ``from_cpu``/``to_cpu`` for migrations); it is ``None`` for plain
    lifecycle events.
    """

    __slots__ = ("time", "event", "thread_name", "tid", "cpu", "extra")

    def __init__(self, time, event, thread_name, tid, cpu, extra=None):
        self.time = time
        self.event = event
        self.thread_name = thread_name
        self.tid = tid
        self.cpu = cpu
        self.extra = extra

    def __repr__(self):
        return (
            f"<{self.time:.0f} {self.event} {self.thread_name} "
            f"cpu={self.cpu}>"
        )


#: The uniform payload fields every ``kernel.*`` probe event carries.
_STANDARD_FIELDS = ("thread", "tid", "cpu", "prio")


class Tracer:
    """Collects kernel events; supports filtering and Gantt rendering.

    :param max_records: drop-oldest bound on memory (None = unbounded).
        Enforced with a ``deque(maxlen=...)``, so eviction is O(1) per
        record; :attr:`dropped` counts the evicted records.
    """

    def __init__(self, max_records=None):
        self.records = deque(maxlen=max_records)
        self.max_records = max_records
        self.dropped = 0
        self._bus = None
        self._subscription = None

    @classmethod
    def attach(cls, kernel, max_records=None):
        """Create a tracer subscribed to the kernel's probe bus.

        Other observers (metrics, exporters) can subscribe to the same
        bus; nothing is clobbered.  Call :meth:`detach` to stop
        collecting.
        """
        tracer = cls(max_records=max_records)
        tracer._bus = kernel.probes
        # pin one bound-method object: the bus unsubscribes by identity
        tracer._subscription = tracer._on_probe
        kernel.probes.subscribe(tracer._subscription,
                                topics=("kernel.*",))
        return tracer

    def detach(self):
        """Unsubscribe from the bus (records stay queryable)."""
        if self._bus is not None:
            self._bus.unsubscribe(self._subscription)
            self._bus = None
            self._subscription = None

    def _record(self, time, event, thread_name, tid, cpu, extra=None):
        if self.max_records is not None and \
                len(self.records) == self.max_records:
            self.dropped += 1  # deque(maxlen) evicts the oldest in O(1)
        self.records.append(
            TraceRecord(time, event, thread_name, tid, cpu, extra)
        )

    def _on_probe(self, topic, time, data):
        extra = {key: value for key, value in data.items()
                 if key not in _STANDARD_FIELDS} or None
        self._record(time, topic[7:], data["thread"], data["tid"],
                     data["cpu"], extra)

    def __call__(self, event, thread, time):
        """Legacy ``kernel.on_event`` observer signature."""
        self._record(time, event, thread.name, thread.tid, thread.cpu)

    def __len__(self):
        return len(self.records)

    # -- queries -------------------------------------------------------

    def filter(self, event=None, thread_name=None, cpu=None, start=None,
               end=None):
        """Records matching every given criterion."""
        out = []
        for record in self.records:
            if event is not None and record.event != event:
                continue
            if thread_name is not None and \
                    record.thread_name != thread_name:
                continue
            if cpu is not None and record.cpu != cpu:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            out.append(record)
        return out

    def counts(self):
        """Event-name histogram."""
        return Counter(record.event for record in self.records)

    def dispatch_latency(self, thread_name):
        """(ready_time, dispatch_time) pairs for a thread — the raw
        material of wake-up latency studies."""
        pairs = []
        pending_ready = None
        for record in self.records:
            if record.thread_name != thread_name:
                continue
            if record.event == "ready":
                pending_ready = record.time
            elif record.event == "dispatch" and pending_ready is not None:
                pairs.append((pending_ready, record.time))
                pending_ready = None
        return pairs

    def busy_intervals(self, cpu):
        """(start, end, thread_name) occupancy intervals for a CPU,
        reconstructed from dispatch/preempt/block/exit events."""
        intervals = []
        current = None  # (thread_name, start)
        for record in self.records:
            if record.cpu != cpu:
                continue
            if record.event == "dispatch":
                if current is not None and record.time > current[1]:
                    intervals.append(
                        (current[1], record.time, current[0])
                    )
                current = (record.thread_name, record.time)
            elif record.event in ("preempt", "block", "thread_exit",
                                  "sleep_expire"):
                if current is not None and \
                        current[0] == record.thread_name:
                    if record.time > current[1]:
                        intervals.append(
                            (current[1], record.time, current[0])
                        )
                    current = None
        return intervals

    # -- rendering -----------------------------------------------------

    def gantt(self, cpu, start=None, end=None, width=80):
        """ASCII Gantt chart of one CPU's occupancy.

        Each distinct thread gets a letter; idle time is ``.``.
        """
        intervals = self.busy_intervals(cpu)
        if not intervals:
            return f"CPU {cpu}: (no activity)"
        if start is None:
            start = intervals[0][0]
        if end is None:
            end = intervals[-1][1]
        if end <= start:
            raise ValueError("end must exceed start")
        letters = {}
        chart = ["."] * width
        scale = (end - start) / width
        for seg_start, seg_end, name in intervals:
            if seg_end <= start or seg_start >= end:
                continue
            if name not in letters:
                letters[name] = chr(ord("A") + len(letters) % 26)
            first = int(max(seg_start - start, 0) / scale)
            last = int(min(seg_end - start, end - start) / scale)
            for i in range(first, max(last, first + 1)):
                if i < width:
                    chart[i] = letters[name]
        legend = "  ".join(
            f"{letter}={name}" for name, letter in sorted(
                letters.items(), key=lambda kv: kv[1]
            )
        )
        return (
            f"CPU {cpu} [{start:.0f}..{end:.0f}]\n"
            + "".join(chart) + "\n" + legend
        )
