"""Structured tracing for the simulated kernel.

Attach a :class:`Tracer` to a kernel's ``on_event`` hook to collect a
timeline of scheduling events (spawn, ready, dispatch, preempt, block,
timer expiry, signal delivery, exit), query it, and render an ASCII
Gantt chart — invaluable when debugging middleware protocols.

Usage::

    tracer = Tracer.attach(kernel)
    ... run ...
    print(tracer.gantt(cpu=0, start=0, end=1_000_000))
"""

from collections import Counter


class TraceRecord:
    """One scheduling event."""

    __slots__ = ("time", "event", "thread_name", "tid", "cpu")

    def __init__(self, time, event, thread_name, tid, cpu):
        self.time = time
        self.event = event
        self.thread_name = thread_name
        self.tid = tid
        self.cpu = cpu

    def __repr__(self):
        return (
            f"<{self.time:.0f} {self.event} {self.thread_name} "
            f"cpu={self.cpu}>"
        )


class Tracer:
    """Collects kernel events; supports filtering and Gantt rendering.

    :param max_records: drop-oldest bound on memory (None = unbounded).
    """

    def __init__(self, max_records=None):
        self.records = []
        self.max_records = max_records
        self.dropped = 0

    @classmethod
    def attach(cls, kernel, max_records=None):
        """Create a tracer and install it as the kernel's observer."""
        tracer = cls(max_records=max_records)
        kernel.on_event = tracer
        return tracer

    def __call__(self, event, thread, time):
        if self.max_records is not None and \
                len(self.records) >= self.max_records:
            self.records.pop(0)
            self.dropped += 1
        self.records.append(
            TraceRecord(time, event, thread.name, thread.tid, thread.cpu)
        )

    def __len__(self):
        return len(self.records)

    # -- queries -------------------------------------------------------

    def filter(self, event=None, thread_name=None, cpu=None, start=None,
               end=None):
        """Records matching every given criterion."""
        out = []
        for record in self.records:
            if event is not None and record.event != event:
                continue
            if thread_name is not None and \
                    record.thread_name != thread_name:
                continue
            if cpu is not None and record.cpu != cpu:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            out.append(record)
        return out

    def counts(self):
        """Event-name histogram."""
        return Counter(record.event for record in self.records)

    def dispatch_latency(self, thread_name):
        """(ready_time, dispatch_time) pairs for a thread — the raw
        material of wake-up latency studies."""
        pairs = []
        pending_ready = None
        for record in self.records:
            if record.thread_name != thread_name:
                continue
            if record.event == "ready":
                pending_ready = record.time
            elif record.event == "dispatch" and pending_ready is not None:
                pairs.append((pending_ready, record.time))
                pending_ready = None
        return pairs

    def busy_intervals(self, cpu):
        """(start, end, thread_name) occupancy intervals for a CPU,
        reconstructed from dispatch/preempt/block/exit events."""
        intervals = []
        current = None  # (thread_name, start)
        for record in self.records:
            if record.cpu != cpu:
                continue
            if record.event == "dispatch":
                if current is not None and record.time > current[1]:
                    intervals.append(
                        (current[1], record.time, current[0])
                    )
                current = (record.thread_name, record.time)
            elif record.event in ("preempt", "block", "thread_exit",
                                  "sleep_expire"):
                if current is not None and \
                        current[0] == record.thread_name:
                    if record.time > current[1]:
                        intervals.append(
                            (current[1], record.time, current[0])
                        )
                    current = None
        return intervals

    # -- rendering -----------------------------------------------------

    def gantt(self, cpu, start=None, end=None, width=80):
        """ASCII Gantt chart of one CPU's occupancy.

        Each distinct thread gets a letter; idle time is ``.``.
        """
        intervals = self.busy_intervals(cpu)
        if not intervals:
            return f"CPU {cpu}: (no activity)"
        if start is None:
            start = intervals[0][0]
        if end is None:
            end = intervals[-1][1]
        if end <= start:
            raise ValueError("end must exceed start")
        letters = {}
        chart = ["."] * width
        scale = (end - start) / width
        for seg_start, seg_end, name in intervals:
            if seg_end <= start or seg_start >= end:
                continue
            if name not in letters:
                letters[name] = chr(ord("A") + len(letters) % 26)
            first = int(max(seg_start - start, 0) / scale)
            last = int(min(seg_end - start, end - start) / scale)
            for i in range(first, max(last, first + 1)):
                if i < width:
                    chart[i] = letters[name]
        legend = "  ".join(
            f"{letter}={name}" for name, letter in sorted(
                letters.items(), key=lambda kv: kv[1]
            )
        )
        return (
            f"CPU {cpu} [{start:.0f}..{end:.0f}]\n"
            + "".join(chart) + "\n" + legend
        )
