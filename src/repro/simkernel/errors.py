"""Exception types for the simulated kernel."""

from repro.engine.readyqueue import ReadyQueueError


class SimulationError(Exception):
    """Base class for all simulated-kernel errors."""


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked.

    Carries a human-readable diagnosis of which threads are stuck and on
    what, so middleware bugs (lost wake-ups, forgotten timers) surface with
    an actionable message instead of a silent hang.
    """

    def __init__(self, message, blocked_threads=()):
        super().__init__(message)
        self.blocked_threads = tuple(blocked_threads)


class SchedulingError(SimulationError, ReadyQueueError):
    """An invalid scheduling request (bad priority, unknown CPU, ...).

    Subclasses :class:`~repro.engine.readyqueue.ReadyQueueError` so
    callers catching the engine-level error also catch kernel-level
    scheduling violations."""


class SyscallError(SimulationError):
    """A syscall request was malformed or issued in an invalid state."""


class SignalUnwind(BaseException):
    """Thrown into a thread's coroutine to model ``siglongjmp`` unwinding.

    The paper terminates overrunning parallel optional parts by having the
    ``SIGALRM`` handler call ``siglongjmp`` back to the ``sigsetjmp`` point
    (Figure 7).  In the coroutine world the kernel models this by throwing
    ``SignalUnwind`` into the generator at the interruption point; it
    propagates out of the optional-part body exactly as the longjmp unwinds
    the C stack.  It subclasses :class:`BaseException` so ordinary
    ``except Exception`` blocks inside user code cannot swallow it by
    accident — only the strategy code that models the ``sigsetjmp`` site
    catches it.

    :param signum: signal number whose handler initiated the unwind.
    :param restore_mask: whether the unwind restores the saved signal mask
        (``siglongjmp`` from a ``sigsetjmp(..., savemask=1)`` does; a C++
        ``try``/``catch`` termination does *not* — Table I of the paper).
    """

    def __init__(self, signum, restore_mask=True):
        super().__init__(f"signal {signum} unwind")
        self.signum = signum
        self.restore_mask = restore_mask
