"""Exception types for the simulated kernel.

Hierarchy
---------

``SimKernelError`` is the common base of everything the simulated
kernel (and the layers built on it) raises deliberately.  Below it the
tree splits into three branches that callers must be able to tell
apart:

* **user/protocol bugs** — :class:`SimulationError` and its subclasses
  (:class:`DeadlockError`, :class:`SchedulingError`,
  :class:`SyscallError`): the simulation detected broken middleware or
  application code.  These should *propagate* — hiding them hides bugs.
* **injected faults** — :class:`InjectedFaultError`: a failure that the
  fault-injection subsystem (:mod:`repro.faults`) manufactured on
  purpose (broker disconnect, forced outage).  Hardened layers catch
  *this* branch specifically and degrade gracefully; a bare
  ``except Exception`` can no longer confuse a manufactured outage with
  a genuine bug.
* **controlled aborts** — :class:`JobAbortError`: a hardened layer
  decided to give up on the current *job* (not the process) because its
  deadline budget ran out; the middleware protocol catches it, records
  the abort, and continues with the next job.

:class:`InvariantViolationError` sits under :class:`SimulationError`:
an invariant check failing after a fault means the *kernel model* (not
the injected fault) is broken.
"""

from repro.engine.readyqueue import ReadyQueueError


class SimKernelError(Exception):
    """Common base for every deliberate error in the simulated stack."""


class SimulationError(SimKernelError):
    """Base class for user/protocol bugs the simulation detects.

    Kept as the historical name; everything that indicates *broken
    code under test* (as opposed to an injected fault or a controlled
    abort) derives from here.
    """


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked.

    Carries a human-readable diagnosis of which threads are stuck and on
    what, so middleware bugs (lost wake-ups, forgotten timers) surface with
    an actionable message instead of a silent hang.
    """

    def __init__(self, message, blocked_threads=()):
        super().__init__(message)
        self.blocked_threads = tuple(blocked_threads)


class SchedulingError(SimulationError, ReadyQueueError):
    """An invalid scheduling request (bad priority, unknown CPU, ...).

    Subclasses :class:`~repro.engine.readyqueue.ReadyQueueError` so
    callers catching the engine-level error also catch kernel-level
    scheduling violations."""


class SyscallError(SimulationError):
    """A syscall request was malformed or issued in an invalid state."""


class InvariantViolationError(SimulationError):
    """A kernel/run-queue state invariant does not hold.

    Raised by :func:`repro.faults.invariants.check_kernel_invariants`:
    after an injected fault the scheduler state must still be
    self-consistent — a violation means the *simulation model* broke,
    not the workload.  Carries the individual findings.
    """

    def __init__(self, message, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class InjectedFaultError(SimKernelError):
    """Base for failures manufactured by the fault-injection subsystem.

    Hardened middleware/trading code catches this branch (or a specific
    subclass such as
    :class:`repro.trading.broker.BrokerDisconnectedError`) to degrade
    gracefully; it deliberately does *not* subclass
    :class:`SimulationError`, so diagnostics that let protocol bugs
    propagate still do.
    """


class JobAbortError(SimKernelError):
    """A hardened layer aborted the current job within its budget.

    Raised by e.g. the retry-with-deadline-budget fetch wrapper when no
    further retry fits in the slack before the optional deadline.  The
    middleware protocol treats it as a *controlled* per-job failure:
    the job's optional parts are discarded, the abort is published as
    ``rtseed.job_abort``, and the process moves on to the next job.

    :param reason: human-readable cause (carried into probe payloads).
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class SignalUnwind(BaseException):
    """Thrown into a thread's coroutine to model ``siglongjmp`` unwinding.

    The paper terminates overrunning parallel optional parts by having the
    ``SIGALRM`` handler call ``siglongjmp`` back to the ``sigsetjmp`` point
    (Figure 7).  In the coroutine world the kernel models this by throwing
    ``SignalUnwind`` into the generator at the interruption point; it
    propagates out of the optional-part body exactly as the longjmp unwinds
    the C stack.  It subclasses :class:`BaseException` so ordinary
    ``except Exception`` blocks inside user code cannot swallow it by
    accident — only the strategy code that models the ``sigsetjmp`` site
    catches it.

    :param signum: signal number whose handler initiated the unwind.
    :param restore_mask: whether the unwind restores the saved signal mask
        (``siglongjmp`` from a ``sigsetjmp(..., savemask=1)`` does; a C++
        ``try``/``catch`` termination does *not* — Table I of the paper).
    :param forced: True when the unwind was injected by the overrun
        watchdog (:class:`repro.core.resilience.OverrunWatchdog`) rather
        than by an armed timer's signal delivery.
    """

    def __init__(self, signum, restore_mask=True, forced=False):
        super().__init__(f"signal {signum} unwind")
        self.signum = signum
        self.restore_mask = restore_mask
        self.forced = forced
