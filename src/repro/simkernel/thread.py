"""Kernel threads: coroutine bodies plus scheduling state."""

import enum

from repro.simkernel.errors import SchedulingError
from repro.simkernel.runqueue import MAX_RT_PRIO, MIN_RT_PRIO


class SchedPolicy(enum.Enum):
    """Scheduling class.  RT-Seed only ever uses ``FIFO``; ``OTHER`` exists
    for completeness (explicit background threads in tests)."""

    FIFO = "SCHED_FIFO"
    OTHER = "SCHED_OTHER"


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class KernelThread:
    """A simulated thread.

    :param name: diagnostic name.
    :param body: either a generator (already instantiated) or a callable
        returning one when invoked with the thread as its argument.  The
        generator yields :mod:`repro.simkernel.syscalls` requests.
    :param cpu: CPU affinity (a single CPU id; the paper pins every thread).
    :param priority: SCHED_FIFO priority in ``[1, 99]``; ignored for OTHER.
    :param policy: scheduling class.
    """

    def __init__(
        self,
        name,
        body,
        cpu=0,
        priority=MIN_RT_PRIO,
        policy=SchedPolicy.FIFO,
    ):
        if policy is SchedPolicy.FIFO and not MIN_RT_PRIO <= priority <= MAX_RT_PRIO:
            raise SchedulingError(
                f"FIFO priority {priority} outside [{MIN_RT_PRIO}, {MAX_RT_PRIO}]"
            )
        #: assigned by :meth:`Kernel.spawn` from a per-kernel counter, so
        #: same-seed runs in one process get identical tids.
        self.tid = None
        self.name = name
        self._body = body
        self.gen = None
        self.cpu = cpu
        self.priority = priority
        self.policy = policy
        self.state = ThreadState.NEW

        # --- kernel bookkeeping (owned by Kernel) -------------------------
        #: remaining divisible work of the in-flight Compute, in work-ns.
        self.work_remaining = 0.0
        #: remaining kernel-latency to serve before/around the work, in
        #: wall-ns.  Latency (context switches, signal sends, cache-line
        #: transfers) is memory/syscall bound and burns at wall rate,
        #: immune to SMT pipeline sharing — unlike ``work_remaining``.
        self.latency_remaining = 0.0
        #: current execution rate (work-ns per sim-ns), set while computing.
        self.rate = 0.0
        #: last time work was charged against ``work_remaining``.
        self.last_charge = 0.0
        #: pending completion event for the in-flight Compute.
        self.completion_event = None
        #: value to send into the generator at next resume.
        self.resume_value = None
        #: exception to throw into the generator at next resume (takes
        #: precedence over ``resume_value``).
        self.resume_exception = None
        #: what the thread is blocked on (diagnostics): a CondVar, Mutex,
        #: a ("sleep", until) tuple, ...
        self.blocked_on = None
        #: wake-up event for ClockNanosleep.
        self.sleep_event = None
        #: per-thread event callbacks, pre-bound once by
        #: :meth:`Kernel.spawn` — completion, wake and sleep-expiry
        #: events are (re)scheduled constantly, and binding at spawn
        #: hoists the ``partial`` allocation out of the hot path.
        self._complete_cb = None
        self._ready_cb = None
        self._sleep_expire_cb = None

        # --- signal state --------------------------------------------------
        #: signum -> disposition (callable, UnwindDisposition, SIG_IGN, ...).
        self.signal_handlers = {}
        #: currently blocked signals.
        self.signal_mask = set()
        #: signals posted while blocked or not deliverable yet (FIFO).
        self.pending_signals = []

        # --- statistics -----------------------------------------------------
        #: total CPU time consumed (sim-ns of wall time while computing).
        self.cpu_time = 0.0
        #: number of times this thread was preempted.
        self.preemptions = 0
        #: number of context switches into this thread.
        self.dispatches = 0

    # -- generator management ----------------------------------------------

    def materialize(self):
        """Instantiate the coroutine body (kernel calls this at spawn)."""
        if self.gen is not None:
            return
        if callable(self._body) and not hasattr(self._body, "send"):
            self.gen = self._body(self)
        else:
            self.gen = self._body
        if not hasattr(self.gen, "send"):
            raise TypeError(
                f"thread body of {self.name!r} must be a generator "
                f"or a callable returning one, got {type(self.gen).__name__}"
            )

    # -- convenience predicates ----------------------------------------------

    @property
    def is_computing(self):
        """True while an in-flight Compute is charged to a CPU."""
        return self.completion_event is not None

    @property
    def has_pending_execution(self):
        """True if dispatching this thread must execute work or latency
        before resuming its coroutine."""
        return self.work_remaining > 0 or self.latency_remaining > 0

    @property
    def alive(self):
        return self.state is not ThreadState.TERMINATED

    def effective_priority(self):
        """Priority used for run-queue placement.

        SCHED_OTHER threads are below every real-time level; the kernel
        models them with a pseudo-priority of 0 handled outside the FIFO
        run queue.
        """
        if self.policy is SchedPolicy.FIFO:
            return self.priority
        return 0

    def __repr__(self):
        return (
            f"<KernelThread tid={self.tid} {self.name!r} cpu={self.cpu} "
            f"prio={self.priority} {self.state.value}>"
        )
