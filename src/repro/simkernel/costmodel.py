"""Micro-cost hooks for the simulated kernel.

The kernel consults a :class:`CostModel` at well-defined points and charges
the returned nanoseconds as extra CPU work.  The default
:class:`ZeroCostModel` charges nothing, so functional tests observe pure
queueing/priority semantics; the Xeon Phi reproduction installs
:class:`repro.hardware.overheads.XeonPhiCostModel`, whose per-event costs
make the paper's Figures 10–13 *emerge* from the protocol (e.g. Δb grows
linearly with np because the mandatory thread issues np priced
``pthread_cond_signal`` calls; Figure 13's policy ordering emerges from
cross-core lock-handoff pricing).
"""


class CostModel:
    """Interface.  All hooks return nanoseconds of CPU work to charge.

    Subclasses override what they care about; the base charges zero.
    """

    #: optional stall provider (``.multiplier(cpu) -> float``) installed
    #: by the fault injector; models that price real micro-costs apply
    #: it to their charges.  ``None`` = no stall windows armed.
    stall = None

    def context_switch(self, cpu, prev_thread, next_thread, kernel):
        """Charged to the incoming thread on every dispatch."""
        return 0.0

    def wakeup_latency(self, thread, kernel, kind="sync"):
        """Delay between a wake event and the thread becoming runnable.

        ``kind`` is ``"sleep"`` for a ``clock_nanosleep`` expiry (timer
        interrupt + IPI, caches gone cold over a period-long sleep) or
        ``"sync"`` for a condvar/mutex handoff wake (warmer, shorter
        path)."""
        return 0.0

    def cond_signal(self, signaler, woken_thread, kernel):
        """Charged to the signalling thread per ``pthread_cond_signal``.

        ``woken_thread`` is ``None`` when the signal found no waiter.
        """
        return 0.0

    def timer_handler(self, thread, kernel):
        """Charged to a thread when a signal handler runs on it."""
        return 0.0

    def unwind(self, thread, kernel):
        """Charged for a ``siglongjmp`` stack/context restore."""
        return 0.0

    def mutex_handoff(self, mutex, prev_cpu, next_cpu, contended, kernel):
        """Charged to the acquiring thread when a mutex transfers between
        CPUs.  ``contended`` is True when the acquirer was queued and
        received the lock via release-handoff (the futex slow path, where
        cross-core cache-line transfer and wake-up costs bite); False for
        an uncontended fast-path acquisition."""
        return 0.0

    def syscall(self, request, thread, kernel):
        """Flat per-syscall entry cost (non-Compute requests)."""
        return 0.0


class ZeroCostModel(CostModel):
    """Charges nothing anywhere — pure logical simulation."""


class ScaledCostModel(CostModel):
    """Wrap another cost model, scaling every charge by ``factor``.

    Useful for sensitivity ablations ("would the orderings hold if the
    platform were 2x slower at context switches?").
    """

    def __init__(self, inner, factor):
        self.inner = inner
        self.factor = float(factor)

    def context_switch(self, cpu, prev_thread, next_thread, kernel):
        return self.factor * self.inner.context_switch(
            cpu, prev_thread, next_thread, kernel
        )

    def wakeup_latency(self, thread, kernel, kind="sync"):
        return self.factor * self.inner.wakeup_latency(thread, kernel, kind)

    def cond_signal(self, signaler, woken_thread, kernel):
        return self.factor * self.inner.cond_signal(signaler, woken_thread, kernel)

    def timer_handler(self, thread, kernel):
        return self.factor * self.inner.timer_handler(thread, kernel)

    def unwind(self, thread, kernel):
        return self.factor * self.inner.unwind(thread, kernel)

    def mutex_handoff(self, mutex, prev_cpu, next_cpu, contended, kernel):
        return self.factor * self.inner.mutex_handoff(
            mutex, prev_cpu, next_cpu, contended, kernel
        )

    def syscall(self, request, thread, kernel):
        return self.factor * self.inner.syscall(request, thread, kernel)
