"""POSIX one-shot timers (``timer_create`` / ``timer_settime``).

RT-Seed arms one optional-deadline timer per parallel optional thread
(Figure 7): a one-shot ``CLOCK_REALTIME`` timer whose expiry posts
``SIGALRM`` to the owning thread.  ``timer_settime`` with a zero value
disarms it (the "stop_itval" call after the optional part completes).
"""

from repro.simkernel.signals import SIGALRM


class KTimer:
    """A one-shot timer owned by a thread.

    :param owner: thread that receives ``signum`` on expiry.
    :param signum: signal posted at expiry (default ``SIGALRM``).
    :param name: diagnostic label.
    """

    _next_id = 1

    def __init__(self, owner, signum=SIGALRM, name=None):
        self.timer_id = KTimer._next_id
        KTimer._next_id += 1
        self.owner = owner
        self.signum = signum
        self.name = name or f"timer-{self.timer_id}"
        #: pending engine event while armed, else None.
        self.event = None
        #: absolute expiry time while armed, else None.
        self.expires_at = None
        #: count of expirations (diagnostics).
        self.expirations = 0
        #: count of arms (diagnostics; arms - expirations = early stops).
        self.arm_count = 0
        #: absolute time of the last expiry, else None (diagnostics).
        self.last_expired_at = None
        #: True once deleted; further operations raise.
        self.deleted = False
        #: expiry callback pre-bound by the kernel at first arm (timers
        #: are re-armed every job; the binding is reused).
        self._expire_cb = None

    @property
    def armed(self):
        return self.event is not None

    def __repr__(self):
        state = f"armed@{self.expires_at:.0f}" if self.armed else "disarmed"
        return f"<KTimer {self.name} owner={self.owner.name} {state}>"
