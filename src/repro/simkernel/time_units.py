"""Time units for the simulated kernel.

All simulated time is expressed in *nanoseconds* held in Python floats.
Real-time systems conventionally reason in nanoseconds (``clock_nanosleep``,
``timer_settime`` take ``timespec`` values); floats give us sub-nanosecond
resolution for rate-shared compute while staying deterministic (all inputs
flow through the same arithmetic on every run).
"""

#: One nanosecond (the base unit).
NSEC = 1.0

#: Nanoseconds per microsecond.
NSEC_PER_USEC = 1_000.0

#: Nanoseconds per millisecond.
NSEC_PER_MSEC = 1_000_000.0

#: Nanoseconds per second.
NSEC_PER_SEC = 1_000_000_000.0

#: One microsecond, in nanoseconds.
USEC = NSEC_PER_USEC

#: One millisecond, in nanoseconds.
MSEC = NSEC_PER_MSEC

#: One second, in nanoseconds.
SEC = NSEC_PER_SEC


def from_seconds(seconds):
    """Convert seconds to simulated nanoseconds."""
    return float(seconds) * NSEC_PER_SEC


def to_seconds(nanoseconds):
    """Convert simulated nanoseconds to seconds."""
    return float(nanoseconds) / NSEC_PER_SEC


def from_microseconds(microseconds):
    """Convert microseconds to simulated nanoseconds."""
    return float(microseconds) * NSEC_PER_USEC


def to_microseconds(nanoseconds):
    """Convert simulated nanoseconds to microseconds."""
    return float(nanoseconds) / NSEC_PER_USEC


def from_milliseconds(milliseconds):
    """Convert milliseconds to simulated nanoseconds."""
    return float(milliseconds) * NSEC_PER_MSEC


def to_milliseconds(nanoseconds):
    """Convert simulated nanoseconds to milliseconds."""
    return float(nanoseconds) / NSEC_PER_MSEC
