"""Simulated Linux kernel substrate for the RT-Seed reproduction.

The paper's middleware runs in user space on Linux, relying on the
``SCHED_FIFO`` scheduling class, POSIX threads, POSIX timers, and signal
delivery.  This package reproduces that substrate as a deterministic
discrete-event simulation:

* :mod:`repro.simkernel.engine` — event queue and simulated clock.
* :mod:`repro.simkernel.cpu` — cores / hardware threads with SMT
  rate-sharing (the Xeon Phi's 4-way in-order SMT is modelled by
  :class:`~repro.simkernel.cpu.Topology`).
* :mod:`repro.simkernel.runqueue` — per-CPU 99-level FIFO run queues
  implemented, as in the paper's Figure 5, with a double circular linked
  list per level plus a priority bitmap.
* :mod:`repro.simkernel.thread` — kernel threads wrapping Python
  generator coroutines that ``yield`` syscall requests.
* :mod:`repro.simkernel.syscalls` — the syscall request vocabulary
  (``Compute``, ``ClockNanosleep``, ``CondWait``, ``TimerSettime``, ...).
* :mod:`repro.simkernel.sync` — mutexes and condition variables with
  POSIX (Mesa) semantics.
* :mod:`repro.simkernel.timers` — one-shot ``CLOCK_REALTIME`` timers.
* :mod:`repro.simkernel.signals` — signal numbers, dispositions, and the
  ``sigsetjmp``/``siglongjmp`` unwinding analog used for terminating
  parallel optional parts.
* :mod:`repro.simkernel.kernel` — the kernel proper: dispatch,
  preemption, syscall processing, background-load occupancy.
* :mod:`repro.simkernel.costmodel` — hook for injecting per-event
  micro-costs (context switches, signal sends, timer handlers); the
  default charges zero so logic tests are exact.
"""

from repro.simkernel.costmodel import CostModel, ZeroCostModel
from repro.simkernel.cpu import Core, HardwareThread, Topology
from repro.simkernel.engine import Engine, Event
from repro.simkernel.errors import (
    DeadlockError,
    InjectedFaultError,
    InvariantViolationError,
    JobAbortError,
    SimKernelError,
    SimulationError,
    SignalUnwind,
)
from repro.simkernel.kernel import Kernel
from repro.simkernel.runqueue import CircularDList, FifoRunQueue, PriorityBitmap
from repro.simkernel.signals import (
    SIG_DFL,
    SIG_IGN,
    SIGALRM,
    SIGTERM,
    SIGUSR1,
    UnwindDisposition,
)
from repro.simkernel.sync import CondVar, Mutex
from repro.simkernel.syscalls import (
    ClockNanosleep,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Exit,
    GetCpu,
    GetTime,
    MutexLock,
    MutexUnlock,
    SchedSetAffinity,
    SchedSetScheduler,
    SchedYield,
    SetSignalMask,
    Sigaction,
    TimerSettime,
)
from repro.simkernel.thread import KernelThread, SchedPolicy, ThreadState
from repro.simkernel.timers import KTimer
from repro.simkernel.trace import Tracer, TraceRecord
from repro.simkernel.time_units import (
    MSEC,
    NSEC_PER_MSEC,
    NSEC_PER_SEC,
    NSEC_PER_USEC,
    SEC,
    USEC,
    from_seconds,
    to_seconds,
)

__all__ = [
    "CostModel",
    "ZeroCostModel",
    "Core",
    "HardwareThread",
    "Topology",
    "Engine",
    "Event",
    "DeadlockError",
    "InjectedFaultError",
    "InvariantViolationError",
    "JobAbortError",
    "SimKernelError",
    "SimulationError",
    "SignalUnwind",
    "Kernel",
    "CircularDList",
    "FifoRunQueue",
    "PriorityBitmap",
    "SIG_DFL",
    "SIG_IGN",
    "SIGALRM",
    "SIGTERM",
    "SIGUSR1",
    "UnwindDisposition",
    "CondVar",
    "Mutex",
    "ClockNanosleep",
    "Compute",
    "CondBroadcast",
    "CondSignal",
    "CondWait",
    "Exit",
    "GetCpu",
    "GetTime",
    "MutexLock",
    "MutexUnlock",
    "SchedSetAffinity",
    "SchedSetScheduler",
    "SchedYield",
    "SetSignalMask",
    "Sigaction",
    "TimerSettime",
    "KernelThread",
    "SchedPolicy",
    "ThreadState",
    "KTimer",
    "Tracer",
    "TraceRecord",
    "MSEC",
    "NSEC_PER_MSEC",
    "NSEC_PER_SEC",
    "NSEC_PER_USEC",
    "SEC",
    "USEC",
    "from_seconds",
    "to_seconds",
]
