"""Signals: numbers, dispositions, and the termination unwind.

The interesting disposition is :class:`UnwindDisposition`, which models the
paper's Figure 7 ``timer_handler``: on delivery the kernel charges the
handler cost, blocks the signal (as POSIX does while a handler runs), and
throws :class:`~repro.simkernel.errors.SignalUnwind` into the thread's
coroutine — the ``siglongjmp`` back to the ``sigsetjmp`` point.  Whether
the unwind *restores the saved signal mask* is the distinction Table I
draws between ``sigsetjmp``/``siglongjmp`` and C++ ``try``/``catch``
termination, so it is a parameter here.
"""

# Signal numbers (matching Linux where it aids readability).
SIGALRM = 14
SIGTERM = 15
SIGUSR1 = 10

#: Number -> name, for probe payloads and trace labels.
SIGNAL_NAMES = {
    SIGUSR1: "SIGUSR1",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
}


def signal_name(signum):
    """Human-readable name of a signal number (``SIG<n>`` if unknown)."""
    return SIGNAL_NAMES.get(signum, f"SIG{signum}")

#: Default disposition sentinel (delivery is an error in this simulation —
#: nothing here should die to an unhandled signal silently).
SIG_DFL = "SIG_DFL"

#: Ignore sentinel.
SIG_IGN = "SIG_IGN"


class UnwindDisposition:
    """Terminate-by-unwinding handler (``siglongjmp`` analog).

    :param restore_mask: restore the signal mask saved at the
        ``sigsetjmp`` point (True for ``sigsetjmp(..., savemask)``;
        False models C++ ``try``/``catch``, which leaves the signal
        blocked so the *next* job's timer never fires — Table I).
    :param on_deliver: optional callback ``(thread, now)`` invoked at
        delivery, before the unwind (used by the harness to timestamp
        terminations).
    """

    def __init__(self, restore_mask=True, on_deliver=None):
        self.restore_mask = restore_mask
        self.on_deliver = on_deliver

    def __repr__(self):
        return f"UnwindDisposition(restore_mask={self.restore_mask})"


class CallbackDisposition:
    """Run a kernel-side callback on delivery; the thread is not unwound.

    Used for bookkeeping signals (e.g. a periodic-check strategy that only
    needs a flag flipped).  The callback runs with signature
    ``(thread, now)``.
    """

    def __init__(self, callback):
        self.callback = callback

    def __repr__(self):
        return f"CallbackDisposition({self.callback!r})"
