"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``overheads``
    Run one Section V overhead configuration and print Δm/Δb/Δs/Δe.

``sweep``
    Run the full figure sweep (policies x loads x np) and print the
    four figure tables.  Slow at paper fidelity; tune ``--jobs``.

``trade``
    Run the real-time trading system and print the session report.

``figures``
    Regenerate the cheap figures/tables (Figure 3, Figure 8, Table I).

``admit``
    Demonstrate admission control on a random workload.

``trace``
    Run a workload with the Chrome-trace exporter attached and write a
    Perfetto-loadable JSON trace (and optionally a JSONL event stream).

``metrics``
    Run a workload with the metrics collector attached and print the
    simulated-time metrics snapshot (counters + latency quantiles).

``report``
    Run a workload with every telemetry source attached (scheduler
    metrics, engine/queue counters, wall-clock profile) and emit one
    unified JSON run report (``rtseed-run-report/1``), consumable by
    ``tools/bench_report.py``.

``faults``
    Run seeded fault-injection scenarios against the trading system and
    emit a deterministic JSON resilience report.

``check``
    Differential conformance fuzzing: random scenarios run on both the
    theory simulator and the middleware simkernel, compared in
    lockstep and checked against trace oracles; failures are shrunk to
    replayable JSON repro artifacts (see docs/CHECKING.md).

``farm``
    Run a check batch, engine-diff batch, or fault campaign through
    the parallel scenario farm with a live per-worker status line; the
    merged report is byte-identical at any ``--workers`` count (see
    docs/FARM.md).  ``farm status`` inspects farm checkpoints on disk
    instead of running anything.

``scale``
    Full-topology scale campaigns (docs/FARM.md "Full-topology
    sweeps"): fill a 57-core x 4-HT Xeon Phi (or any subset) with
    thousands of RMWP-schedulable tasks, one farm shard per core, or
    farm the fig-series sweep grid and the three ablations
    (``--what sweep``).  Worker-count-invariant merged reports,
    checkpoint/``--resume``, and a jobs/minute throughput line.

``snapshot``
    Deterministic checkpoint/restore: run a program to completion, dump
    an ``rtseed-snapshot/1`` at an event barrier, inspect a snapshot,
    or resume one to the end — the resumed payload is byte-identical
    to the uninterrupted run (see docs/SNAPSHOTS.md).
"""

import argparse
import sys


def _add_overheads_parser(subparsers):
    parser = subparsers.add_parser(
        "overheads", help="run one overhead configuration (Section V)"
    )
    parser.add_argument("--np", dest="n_parallel", type=int, default=57,
                        help="number of parallel optional parts")
    parser.add_argument("--policy", default="one_by_one",
                        choices=["one_by_one", "two_by_two", "all_by_all"])
    parser.add_argument("--load", default="none",
                        choices=["none", "cpu", "cpu_memory"])
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    _add_engine_argument(parser)


def _add_sweep_parser(subparsers):
    parser = subparsers.add_parser(
        "sweep", help="full Figures 10-13 sweep"
    )
    parser.add_argument("--jobs", type=int, default=5)
    parser.add_argument("--counts", default=None,
                        help="comma-separated np values")


def _add_trade_parser(subparsers):
    parser = subparsers.add_parser(
        "trade", help="run the real-time trading system"
    )
    parser.add_argument("--seconds", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--policy", default="one_by_one",
                        choices=["one_by_one", "two_by_two", "all_by_all"])
    parser.add_argument("--load", default="none",
                        choices=["none", "cpu", "cpu_memory"])
    parser.add_argument("--od-ms", type=float, default=None,
                        help="relative optional deadline in ms")
    _add_engine_argument(parser)


def _add_figures_parser(subparsers):
    subparsers.add_parser(
        "figures", help="regenerate Figure 3 / Figure 8 / Table I"
    )


def _add_admit_parser(subparsers):
    parser = subparsers.add_parser(
        "admit", help="admission-control demonstration"
    )
    parser.add_argument("--cpus", type=int, default=2)
    parser.add_argument("--tasks", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)


def _add_workload_arguments(parser):
    """Shared workload selection for the observability commands."""
    parser.add_argument("--workload", default="overheads",
                        choices=["overheads", "trade"],
                        help="what to run under observation")
    parser.add_argument("--np", dest="n_parallel", type=int, default=8,
                        help="parallel optional parts (overheads "
                             "workload)")
    parser.add_argument("--jobs", type=int, default=5,
                        help="jobs (overheads) / seconds (trade)")
    parser.add_argument("--policy", default="one_by_one",
                        choices=["one_by_one", "two_by_two", "all_by_all"])
    parser.add_argument("--load", default="none",
                        choices=["none", "cpu", "cpu_memory"])
    parser.add_argument("--seed", type=int, default=0)
    _add_engine_argument(parser)


def _add_trace_parser(subparsers):
    parser = subparsers.add_parser(
        "trace", help="export a Perfetto/Chrome trace of a workload"
    )
    _add_workload_arguments(parser)
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace-event JSON output path")
    parser.add_argument("--jsonl", default=None,
                        help="also stream every probe event to this "
                             "JSONL file")
    parser.add_argument("--flight-dump", default=None, metavar="PATH",
                        help="also dump the flight-recorder ring (last "
                             "512 probe events + kernel state) to this "
                             "JSONL file after the run")


def _add_metrics_parser(subparsers):
    parser = subparsers.add_parser(
        "metrics", help="collect simulated-time metrics for a workload"
    )
    _add_workload_arguments(parser)
    parser.add_argument("--format", default=None,
                        choices=["json", "table"],
                        help="output format (default: table)")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _add_report_parser(subparsers):
    parser = subparsers.add_parser(
        "report", help="emit a unified JSON run report for a workload"
    )
    _add_workload_arguments(parser)
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--no-wallclock", action="store_true",
                        help="omit the wall-clock profile section "
                             "(byte-deterministic report)")


def _add_faults_parser(subparsers):
    parser = subparsers.add_parser(
        "faults", help="run a fault-injection resilience campaign"
    )
    parser.add_argument("--scenario", default="all",
                        help="scenario name, comma-separated names, or "
                             "'all' (see --list)")
    parser.add_argument("--seconds", type=int, default=30,
                        help="trading duration per scenario")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here instead of "
                             "stdout")
    parser.add_argument("--list", action="store_true",
                        help="list the canned scenarios and exit")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="dump flight-recorder artifacts into this "
                             "directory at every failure edge "
                             "(invariant violation, degraded-mode "
                             "entry, watchdog fire)")
    parser.add_argument("--workers", type=int, default=1,
                        help="run the campaign through the scenario "
                             "farm with this many worker processes; "
                             "the report bytes are identical at any "
                             "worker count (docs/FARM.md)")
    parser.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="checkpoint completed scenarios here and "
                             "resume from it on the next run; also "
                             "enables graceful SIGTERM/SIGINT drain "
                             "(docs/SNAPSHOTS.md)")
    parser.add_argument("--resume", default=None, metavar="FILE",
                        help="resume a serial campaign from this "
                             "campaign snapshot (--workers 1; farmed "
                             "campaigns auto-resume via --checkpoint)")


def _add_engine_argument(parser):
    parser.add_argument("--engine", default=None,
                        choices=["reference", "fast"],
                        help="execution-core backend (default: "
                             "$RTSEED_ENGINE or reference); seeded "
                             "runs are byte-identical either way")


def _add_check_parser(subparsers):
    parser = subparsers.add_parser(
        "check", help="differential conformance fuzzing"
    )
    parser.add_argument("--runs", type=int, default=100,
                        help="number of generated scenarios")
    parser.add_argument("--seed", type=int, default=0,
                        help="batch seed; run k's scenario seed is "
                             "derived independently as "
                             "derive_run_seed(seed, k)")
    parser.add_argument("--fault-rate", type=float, default=None,
                        help="fraction of scenarios carrying a fault "
                             "plan (default 0; oracle checks only, no "
                             "differential — except --engine-diff, "
                             "which defaults to 0.25 and runs the "
                             "differential on faulted scenarios too)")
    parser.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="delta-debug failing scenarios (default on)")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failing scenarios")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write one repro JSON per failure here")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run a saved repro artifact and exit")
    parser.add_argument("--from-snapshot", default=None, metavar="FILE",
                        help="with --replay: restore this divergence "
                             "snapshot (written next to the artifact "
                             "by --artifacts) and re-execute only the "
                             "tail (docs/SNAPSHOTS.md)")
    parser.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="farm path only: checkpoint completed "
                             "runs here and resume from it on the "
                             "next run; also enables graceful "
                             "SIGTERM/SIGINT drain")
    parser.add_argument("--engine-diff", action="store_true",
                        help="lockstep fast-vs-reference differential "
                             "instead of the theory oracle: every "
                             "scenario runs on both engine backends "
                             "and the probe streams must be "
                             "byte-identical (fault plans allowed, "
                             "default fault rate 0.25)")
    parser.add_argument("--workers", type=int, default=None,
                        help="run the batch through the scenario farm "
                             "with this many worker processes; the "
                             "merged report is byte-identical at any "
                             "worker count (docs/FARM.md)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the farm's merged JSON report "
                             "here (implies the farm path; see "
                             "--workers)")


def _add_farm_parser(subparsers):
    parser = subparsers.add_parser(
        "farm", help="parallel scenario farm with live worker status"
    )
    parser.add_argument("action", nargs="?", default="run",
                        choices=["run", "status"],
                        help="run (default): execute a batch; status: "
                             "inspect farm checkpoints on disk "
                             "(--checkpoint FILE or --checkpoint-dir "
                             "DIR) without running anything")
    parser.add_argument("--what", default="check",
                        choices=["check", "engine-diff", "faults"],
                        help="which batch to farm out")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--runs", type=int, default=50,
                        help="scenarios per batch (check/engine-diff)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fault-rate", type=float, default=None,
                        help="check/engine-diff fault rate (defaults "
                             "0 / 0.25)")
    parser.add_argument("--scenario", default="all",
                        help="campaign scenarios (faults): name, "
                             "comma-separated names, or 'all'")
    parser.add_argument("--seconds", type=int, default=12,
                        help="trading duration per campaign scenario")
    parser.add_argument("--heartbeat", type=float, default=None,
                        help="seconds of worker silence before the "
                             "parent declares a hang")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="dump the farm flight ring here on "
                             "quarantine")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the merged JSON report here "
                             "instead of stdout")
    parser.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="checkpoint completed items here and "
                             "resume from it on the next run; also "
                             "enables graceful SIGTERM/SIGINT drain "
                             "(docs/SNAPSHOTS.md)")
    parser.add_argument("--checkpoint-dir", default=".", metavar="DIR",
                        help="farm status: directory to scan for farm "
                             "checkpoints (default: current directory)")


def _add_scale_parser(subparsers):
    parser = subparsers.add_parser(
        "scale",
        help="full-topology scale campaigns on the scenario farm",
    )
    parser.add_argument("--what", default="campaign",
                        choices=["campaign", "sweep"],
                        help="campaign: fill the topology with "
                             "RMWP-schedulable tasks (one shard per "
                             "core); sweep: farm the fig-series grid "
                             "and the three ablations")
    parser.add_argument("--cores", type=int, default=57,
                        help="cores of the (subset) Xeon Phi topology")
    parser.add_argument("--threads-per-core", type=int, default=4,
                        help="hardware threads per core (1..4)")
    parser.add_argument("--tasks", type=int, default=2000,
                        help="total tasks across the topology "
                             "(campaign)")
    parser.add_argument("--utilization", type=float, default=0.5,
                        help="per-core task-set utilization (campaign)")
    parser.add_argument("--horizon-periods", type=int, default=2,
                        help="horizon as a multiple of each core's "
                             "longest period (campaign)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed; core k's scenario seed is "
                             "derive_run_seed(seed, k)")
    parser.add_argument("--workers", type=int, default=1,
                        help="farm worker processes; the merged report "
                             "is byte-identical at any count")
    parser.add_argument("--quick", action="store_true",
                        help="sweep: smoke-sized point grid")
    parser.add_argument("--heartbeat", type=float, default=None,
                        help="seconds of worker silence before the "
                             "parent declares a hang")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="dump the farm flight ring here on "
                             "quarantine")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the merged JSON report here "
                             "instead of stdout")
    parser.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="checkpoint completed shards here; also "
                             "enables graceful SIGTERM/SIGINT drain "
                             "(exit code 3)")
    parser.add_argument("--resume", default=None, metavar="FILE",
                        help="resume an interrupted campaign from this "
                             "checkpoint file (same machinery as "
                             "--checkpoint, spelled for intent; "
                             "completed shards are skipped)")
    _add_engine_argument(parser)


def _add_snapshot_parser(subparsers):
    parser = subparsers.add_parser(
        "snapshot",
        help="deterministic checkpoint/restore of a seeded run",
    )
    parser.add_argument("action",
                        choices=["run", "dump", "inspect", "resume"],
                        help="run: program to completion (payload "
                             "JSON); dump: snapshot at --at-events; "
                             "inspect: summarize a snapshot; resume: "
                             "restore + finish (payload JSON, "
                             "byte-identical to run)")
    parser.add_argument("--program", default="trade",
                        choices=["overheads", "trade", "faults",
                                 "check"],
                        help="which program to run/dump")
    parser.add_argument("--np", dest="n_parallel", type=int, default=8,
                        help="parallel optional parts (overheads)")
    parser.add_argument("--jobs", type=int, default=5,
                        help="jobs (overheads)")
    parser.add_argument("--seconds", type=int, default=6,
                        help="trading duration (trade / faults)")
    parser.add_argument("--policy", default="one_by_one",
                        choices=["one_by_one", "two_by_two",
                                 "all_by_all"])
    parser.add_argument("--load", default="none",
                        choices=["none", "cpu", "cpu_memory"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="cpu_stall",
                        help="faults program: campaign scenario name")
    parser.add_argument("--artifact", default=None, metavar="FILE",
                        help="check program: repro artifact supplying "
                             "the scenario")
    _add_engine_argument(parser)
    parser.add_argument("--at-events", type=int, default=None,
                        help="dump: engine event barrier to snapshot "
                             "at (required for dump)")
    parser.add_argument("--snapshot", default=None, metavar="FILE",
                        help="snapshot path (dump writes it; "
                             "inspect/resume read it)")
    parser.add_argument("--expect-engine", default=None,
                        choices=["reference", "fast"],
                        help="resume: refuse snapshots taken on a "
                             "different backend")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the payload JSON here instead of "
                             "stdout (run/resume)")


def _load_from_name(name):
    from repro.hardware.loads import BackgroundLoad

    return {
        "none": BackgroundLoad.NONE,
        "cpu": BackgroundLoad.CPU,
        "cpu_memory": BackgroundLoad.CPU_MEMORY,
    }[name]


def cmd_overheads(args, out):
    from repro.bench.overheads import run_overhead_experiment
    from repro.bench.reporting import format_table

    sample = run_overhead_experiment(
        args.n_parallel,
        policy=args.policy,
        load=_load_from_name(args.load),
        n_jobs=args.jobs,
        seed=args.seed,
        engine=args.engine,
    )
    rows = [
        [f"Δ{which}", f"{sample.mean(which):.1f}",
         f"{sample.std(which):.1f}", f"{sample.max(which):.1f}"]
        for which in "mbse"
    ]
    print(
        format_table(
            ["overhead", "mean [us]", "std", "max [us]"],
            rows,
            title=(
                f"np={args.n_parallel} policy={args.policy} "
                f"load={args.load} jobs={args.jobs}"
            ),
        ),
        file=out,
    )
    print(f"part fates: {sample.fates}", file=out)
    return 0


def cmd_sweep(args, out):
    from repro.bench.overheads import (
        PARALLEL_COUNTS,
        figure_series,
        overhead_sweep,
    )
    from repro.bench.reporting import format_series
    from repro.hardware.loads import BackgroundLoad

    counts = PARALLEL_COUNTS
    if args.counts:
        counts = tuple(int(c) for c in args.counts.split(","))
    samples = overhead_sweep(counts=counts, n_jobs=args.jobs)
    titles = {
        "m": "Figure 10: beginning the mandatory part [us]",
        "s": "Figure 11: switching mandatory -> optional [us]",
        "b": "Figure 12: beginning the optional parts [us]",
        "e": "Figure 13: ending the optional parts [us]",
    }
    for which in "msbe":
        print(f"\n=== {titles[which]} ===", file=out)
        for load in BackgroundLoad:
            series = figure_series(samples, which, load)
            print(format_series(f"({load.label})", series, unit="us"),
                  file=out)
    return 0


def cmd_trade(args, out):
    from repro.bench.reporting import format_table
    from repro.simkernel.time_units import MSEC
    from repro.trading.system import RealTimeTradingSystem

    system = RealTimeTradingSystem(
        n_seconds=args.seconds,
        seed=args.seed,
        policy=args.policy,
        load=_load_from_name(args.load),
        optional_deadline=(
            None if args.od_ms is None else args.od_ms * MSEC
        ),
        engine=args.engine,
    )
    report = system.run()
    summary = report.summary()
    rows = [[key, value if not isinstance(value, float) else f"{value:.2f}"]
            for key, value in summary.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"trading session ({args.seconds}s)"),
          file=out)
    return 0


def cmd_figures(args, out):
    from repro.bench.reporting import format_table
    from repro.bench.traces import fig3_remaining_time_traces
    from repro.core.policies import POLICIES
    from repro.core.termination import termination_table
    from repro.hardware.xeonphi import xeon_phi_topology

    traces = fig3_remaining_time_traces()
    print("=== Figure 3: remaining execution time ===", file=out)
    for name, points in traces.items():
        rendered = " -> ".join(f"({t:.0f},{r:.0f})" for t, r in points)
        print(f"{name:10s}: {rendered}", file=out)

    print("\n=== Figure 8: 171 parts per core (C0..C56) ===", file=out)
    topology = xeon_phi_topology()
    for name, policy in POLICIES.items():
        counts = policy.occupancy(topology, 171)
        row = "".join(str(counts.get(core, 0)) for core in range(57))
        print(f"{name:12s} {row}", file=out)

    print("\n=== Table I: termination strategies ===", file=out)
    rows = [
        [name, "X" if any_time else "", "X" if mask else ""]
        for name, any_time, mask in termination_table()
    ]
    print(format_table(
        ["implementation", "any-time termination",
         "signal-mask restoration"],
        rows,
    ), file=out)
    return 0


def cmd_admit(args, out):
    from repro.bench.reporting import format_table
    from repro.core.admission import AdmissionController
    from repro.model import TaskSetGenerator

    controller = AdmissionController(n_cpus=args.cpus)
    generator = TaskSetGenerator(seed=args.seed)
    taskset = generator.extended_task_set(args.tasks,
                                          0.55 * args.cpus)
    rows = []
    for model in taskset:
        cpu, decision = controller.admit_anywhere(model,
                                                  heuristic="worst_fit")
        rows.append([
            model.name,
            f"{model.utilization:.3f}",
            "-" if cpu is None else cpu,
            decision.reason if not decision else "admitted",
        ])
    utilization_rows = [
        [cpu, f"{controller.utilization(cpu):.3f}",
         len(controller.admitted(cpu))]
        for cpu in range(args.cpus)
    ]
    print(format_table(["task", "U", "cpu", "outcome"], rows,
                       title="admission decisions (worst-fit)"),
          file=out)
    print(format_table(["cpu", "U", "tasks"], utilization_rows,
                       title="\nfinal per-CPU state"), file=out)
    return 0


def _build_workload(args):
    """Build the workload under observation; return ``(kernel, run)``.

    ``run()`` executes the workload to completion; observers must be
    subscribed to ``kernel.probes`` before calling it.
    """
    if args.workload == "trade":
        from repro.trading.system import RealTimeTradingSystem

        system = RealTimeTradingSystem(
            n_seconds=args.jobs,
            seed=args.seed,
            policy=args.policy,
            load=_load_from_name(args.load),
            engine=args.engine,
        )
        return system.middleware.kernel, system.run

    from repro.bench.overheads import OPTIONAL_DEADLINE, make_eval_task
    from repro.core.middleware import RTSeed

    middleware = RTSeed(load=_load_from_name(args.load), seed=args.seed,
                        engine=args.engine)
    middleware.add_task(
        make_eval_task(args.n_parallel),
        n_jobs=args.jobs,
        cpu=0,
        policy=args.policy,
        optional_deadline=OPTIONAL_DEADLINE,
    )
    return middleware.kernel, middleware.run


def cmd_trace(args, out):
    from repro.obs import ChromeTraceExporter, FlightRecorder, JsonlExporter

    kernel, run = _build_workload(args)
    exporter = ChromeTraceExporter.attach(kernel)
    recorder = None
    if args.flight_dump:
        recorder = FlightRecorder.attach(kernel, seed=args.seed)
    jsonl_stream = None
    jsonl = None
    if args.jsonl:
        jsonl_stream = open(args.jsonl, "w")
        jsonl = JsonlExporter.attach(kernel, jsonl_stream)
    try:
        run()
    finally:
        if jsonl_stream is not None:
            jsonl_stream.close()
    exporter.write(args.out)
    print(f"wrote {len(exporter.events)} trace events to {args.out}",
          file=out)
    if jsonl is not None:
        print(f"wrote {jsonl.lines} probe events to {args.jsonl}",
              file=out)
    if recorder is not None:
        recorder.dump(args.flight_dump, "on_demand")
        print(f"wrote flight dump ({len(recorder)} events, "
              f"{recorder.dropped} dropped) to {args.flight_dump}",
              file=out)
    print("open in https://ui.perfetto.dev or chrome://tracing",
          file=out)
    return 0


def cmd_metrics(args, out):
    import json as json_module

    from repro.obs import SchedulerMetrics

    output_format = args.format or ("json" if args.json else "table")
    kernel, run = _build_workload(args)
    metrics = SchedulerMetrics.attach(kernel)
    run()
    if output_format == "json":
        print(json_module.dumps(metrics.registry.snapshot(), indent=2,
                                sort_keys=True), file=out)
    else:
        print(metrics.format(), file=out)
    return 0


def cmd_report(args, out):
    from repro.obs import (
        FlightRecorder,
        RunReport,
        SchedulerMetrics,
        WallClockProfile,
    )

    profile = WallClockProfile()
    with profile.section("report.build"):
        kernel, run = _build_workload(args)
        metrics = SchedulerMetrics.attach(kernel)
        FlightRecorder.attach(kernel, seed=args.seed)
    with profile.section("report.run"):
        run()
    report = RunReport.collect(
        kernel, metrics=metrics, profile=profile,
        include_wallclock=not args.no_wallclock,
    )
    rendered = report.to_json()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote run report ({len(report.sections) - 1} "
              f"sections) to {args.out}", file=out)
    else:
        out.write(rendered)
    return 0


class _FarmProgress:
    """Render ``farm.*`` lifecycle events as a per-worker status line.

    On a TTY the line is rewritten in place (``\\r``); otherwise only
    the milestone events print (start, shard completions, losses,
    retries, quarantines), keeping CI logs readable.
    """

    def __init__(self, out):
        self.out = out
        self.tty = getattr(out, "isatty", lambda: False)()
        self.sizes = []
        self.done = {}

    def _status(self):
        workers = " ".join(
            f"w{shard}:{self.done.get(shard, 0)}/{size}"
            for shard, size in enumerate(self.sizes)
        )
        total = sum(self.done.values())
        return f"farm: {workers} ({total}/{sum(self.sizes)} items)"

    def _line(self, text):
        if self.tty:
            self.out.write("\r\x1b[K")
        print(text, file=self.out)

    def __call__(self, topic, data):
        if topic == "farm.start":
            self.sizes = list(data["shard_sizes"])
            self.done = {}
            self._line(f"farm: {data['items']} item(s) across "
                       f"{data['workers']} worker(s), shard sizes "
                       f"{self.sizes}")
        elif topic == "farm.item_done":
            shard = data["shard"]
            self.done[shard] = self.done.get(shard, 0) + 1
            if self.tty:
                self.out.write("\r\x1b[K" + self._status())
                self.out.flush()
        elif topic == "farm.shard_done":
            self._line(f"farm: shard {data['shard']} done "
                       f"({self.done.get(data['shard'], 0)} item(s))")
        elif topic == "farm.worker_lost":
            self._line(f"farm: worker lost on shard {data['shard']} "
                       f"({data['reason']}, attempt {data['attempt']}, "
                       f"{data['pending']} item(s) pending)")
        elif topic == "farm.retry":
            self._line(f"farm: retrying shard {data['shard']} on a "
                       f"fresh process (attempt {data['attempt']}, "
                       f"{data['items']} item(s))")
        elif topic == "farm.quarantine":
            self._line(f"farm: QUARANTINED shard {data['shard']} "
                       f"({data['reason']}); unfinished indices "
                       f"{data['indices']}")
        elif topic == "farm.done":
            self._line(self._status())


def _farm_status(result, out):
    stats = result.stats
    print(
        f"farm: {stats['completed']}/{stats['items']} item(s), "
        f"{stats['workers']} worker(s) ({stats['start_method']}), "
        f"{stats['retries']} retr{'y' if stats['retries'] == 1 else 'ies'}, "
        f"{stats['quarantined_shards']} quarantined, "
        f"{stats['wall_seconds']}s",
        file=out,
    )


class _StopFlag:
    """SIGINT/SIGTERM latch for the serial campaign's graceful drain;
    previous handlers restored by :meth:`restore`."""

    def __init__(self):
        import signal

        self.signum = None
        self._previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            self._previous[signum] = signal.signal(signum, self._set)

    def _set(self, signum, _frame):
        self.signum = signum

    def __call__(self):
        return self.signum

    def restore(self):
        import signal

        for signum, handler in self._previous.items():
            signal.signal(signum, handler)


def cmd_faults(args, out):
    from repro.faults.campaign import (
        SCENARIOS,
        CampaignInterrupted,
        render_report,
        run_campaign,
    )

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:18s} {SCENARIOS[name]['description']}",
                  file=out)
        return 0
    if args.scenario == "all":
        names = None
    else:
        names = [name.strip() for name in args.scenario.split(",")]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)} "
                  f"(try --list)", file=out)
            return 2
    if args.resume and args.workers > 1:
        print("--resume is for serial campaigns; farmed campaigns "
              "auto-resume from --checkpoint", file=out)
        return 2
    quarantined = False
    if args.workers > 1:
        from repro.farm import FarmInterrupted, farm_campaign

        try:
            report, farm_result = farm_campaign(
                scenarios=names, n_seconds=args.seconds, seed=args.seed,
                workers=args.workers, flight_dir=args.flight_dir,
                on_event=_FarmProgress(out),
                checkpoint_path=args.checkpoint,
                handle_signals=bool(args.checkpoint),
            )
        except FarmInterrupted as interrupt:
            print(f"faults: {interrupt}", file=out)
            return 3
        quarantined = bool(farm_result.quarantined
                           or report.get("incomplete"))
    else:
        resume_document = None
        if args.resume:
            from repro.snapshot import load_snapshot

            resume_document = load_snapshot(args.resume)
        stop = _StopFlag() if args.checkpoint else None
        try:
            report = run_campaign(
                scenarios=names, n_seconds=args.seconds,
                seed=args.seed, flight_dir=args.flight_dir,
                checkpoint_path=args.checkpoint,
                resume_from=resume_document, should_stop=stop,
            )
        except CampaignInterrupted as interrupt:
            print(f"faults: {interrupt}", file=out)
            return 3
        finally:
            if stop is not None:
                stop.restore()
    rendered = render_report(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        scenario_count = len(report["scenarios"])
        print(f"wrote {scenario_count} scenario report(s) to "
              f"{args.out}", file=out)
    else:
        out.write(rendered)
    return 2 if quarantined else 0


def cmd_check(args, out):
    from repro.check import (
        fuzz,
        fuzz_engine_diff,
        load_artifact,
        replay_artifact,
    )
    from repro.check.shrink import save_artifact

    if args.replay:
        artifact = load_artifact(args.replay)
        if args.from_snapshot:
            from repro.check.timetravel import replay_from_snapshot
            from repro.snapshot import load_snapshot

            document = load_snapshot(args.from_snapshot)
            barrier = document["barrier"]["events_processed"]
            report, _payload = replay_from_snapshot(document)
            print(f"replay {args.replay} from snapshot "
                  f"{args.from_snapshot} (restored at {barrier} "
                  f"events): {report.summary()}", file=out)
        else:
            report = replay_artifact(artifact)
            print(f"replay {args.replay}: {report.summary()}",
                  file=out)
        expected = set(artifact["failure_kinds"])
        got = set(report.failure_kinds())
        if args.from_snapshot and expected == {"engine_mismatch"}:
            # a single-backend time-travel replay cannot re-run the
            # two-backend differential; the restored state is the value
            print("engine-diff artifact: single-backend replay, "
                  "failure kinds not comparable", file=out)
            return 0
        if expected and not (expected & got):
            print(f"DID NOT REPRODUCE (expected {sorted(expected)}, "
                  f"got {sorted(got)})", file=out)
            return 1
        return 0

    quarantined = False
    if args.workers is not None or args.out or args.checkpoint:
        from repro.farm import FarmInterrupted, farm_check, \
            render_check_report

        try:
            document, farm_result = farm_check(
                args.runs,
                seed=args.seed,
                fault_rate=args.fault_rate,
                shrink=args.shrink,
                engine_diff=args.engine_diff,
                max_failures=args.max_failures,
                workers=args.workers or 1,
                checkpoint_path=args.checkpoint,
                handle_signals=bool(args.checkpoint),
            )
        except FarmInterrupted as interrupt:
            print(f"check: {interrupt}", file=out)
            return 3
        quarantined = bool(farm_result.quarantined)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(render_check_report(document))
            print(f"wrote farm report to {args.out}", file=out)
        result = {
            "runs": document["completed_runs"],
            "differential_runs": document["differential_runs"],
            "failures": document["failures"],
        }
    else:
        def progress(seed, payload):
            if not payload["ok"]:
                print(f"seed {seed}: FAIL — {payload['summary']}",
                      file=out)

        if args.engine_diff:
            result = fuzz_engine_diff(
                args.runs,
                seed=args.seed,
                fault_rate=(0.25 if args.fault_rate is None
                            else args.fault_rate),
                max_failures=args.max_failures,
                on_progress=progress,
            )
        else:
            result = fuzz(
                args.runs,
                seed=args.seed,
                fault_rate=(0.0 if args.fault_rate is None
                            else args.fault_rate),
                shrink=args.shrink,
                max_failures=args.max_failures,
                on_progress=progress,
            )
    failures = result["failures"]
    if args.artifacts and failures:
        import os

        from repro.check.timetravel import divergence_snapshot
        from repro.snapshot import write_snapshot

        os.makedirs(args.artifacts, exist_ok=True)
        for artifact in failures:
            path = os.path.join(args.artifacts,
                                f"repro-seed{artifact['seed']}.json")
            save_artifact(path, artifact)
            print(f"wrote {path}", file=out)
            snapshot_path = os.path.join(
                args.artifacts,
                f"repro-seed{artifact['seed']}-snapshot.json",
            )
            document, info = divergence_snapshot(artifact)
            write_snapshot(snapshot_path, document)
            print(f"wrote {snapshot_path} (barrier {info['barrier']}/"
                  f"{info['total_events']} events, "
                  f"{info['barrier_source']})", file=out)
    mode = "engine-diff " if args.engine_diff else ""
    print(
        f"{result['runs']} {mode}runs from seed {args.seed}: "
        f"{result['differential_runs']} differential, "
        f"{len(failures)} failure(s)",
        file=out,
    )
    if quarantined:
        return 2
    return 1 if failures else 0


def _cmd_farm_status(args, out):
    """``repro farm status``: inspect checkpoints without running.

    A missing or checkpoint-free location reports "no checkpoints" and
    exits 0 — status is a question, not an assertion.
    """
    from repro.farm import inspect_checkpoint, inspect_checkpoint_dir

    if args.checkpoint:
        summaries = [s for s in [inspect_checkpoint(args.checkpoint)]
                     if s is not None]
        where = args.checkpoint
    else:
        summaries = inspect_checkpoint_dir(args.checkpoint_dir)
        where = args.checkpoint_dir
    if not summaries:
        print(f"no checkpoints in {where}", file=out)
        return 0
    for summary in summaries:
        meta = summary["meta"] or {}
        what = meta.get("what", "?")
        detail = " ".join(
            f"{key}={meta[key]}" for key in sorted(meta)
            if key != "what"
        )
        torn = " (torn tail)" if summary["torn_tail"] else ""
        print(f"{summary['path']}: {what} "
              f"{summary['completed']} item(s) completed{torn}"
              + (f" [{detail}]" if detail else ""), file=out)
    return 0


def cmd_farm(args, out):
    from repro.farm import (
        DEFAULT_HEARTBEAT,
        FarmInterrupted,
        farm_campaign,
        farm_check,
        render_check_report,
    )

    if args.action == "status":
        return _cmd_farm_status(args, out)

    progress = _FarmProgress(out)
    heartbeat = (DEFAULT_HEARTBEAT if args.heartbeat is None
                 else args.heartbeat)
    handle_signals = bool(args.checkpoint)
    try:
        if args.what == "faults":
            from repro.faults.campaign import SCENARIOS, render_report

            names = None
            if args.scenario != "all":
                names = [name.strip()
                         for name in args.scenario.split(",")]
                unknown = [name for name in names
                           if name not in SCENARIOS]
                if unknown:
                    print(f"unknown scenario(s): {', '.join(unknown)}",
                          file=out)
                    return 2
            document, farm_result = farm_campaign(
                scenarios=names, n_seconds=args.seconds,
                seed=args.seed, workers=args.workers,
                heartbeat=heartbeat, flight_dir=args.flight_dir,
                on_event=progress, checkpoint_path=args.checkpoint,
                handle_signals=handle_signals,
            )
            rendered = render_report(document)
            failed = bool(document.get("incomplete"))
        else:
            document, farm_result = farm_check(
                args.runs, seed=args.seed, fault_rate=args.fault_rate,
                engine_diff=args.what == "engine-diff",
                workers=args.workers, heartbeat=heartbeat,
                flight_dir=args.flight_dir, on_event=progress,
                checkpoint_path=args.checkpoint,
                handle_signals=handle_signals,
            )
            rendered = render_check_report(document)
            failed = bool(document["total_failures"]
                          or document["errors"])
    except FarmInterrupted as interrupt:
        print(f"farm: {interrupt}", file=out)
        return 3
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote merged report to {args.out}", file=out)
    _farm_status(farm_result, out)
    if farm_result.quarantined:
        return 2
    return 1 if failed else 0


def cmd_scale(args, out):
    from repro.farm import DEFAULT_HEARTBEAT, FarmInterrupted
    from repro.hardware.xeonphi import XEON_PHI_3120A
    from repro.scale import farm_scale, farm_scale_sweep, \
        render_scale_report

    try:
        spec = XEON_PHI_3120A.subset(args.cores, args.threads_per_core)
    except ValueError as error:
        print(f"scale: {error}", file=out)
        return 2
    checkpoint = args.resume or args.checkpoint
    progress = _FarmProgress(out)
    heartbeat = (DEFAULT_HEARTBEAT if args.heartbeat is None
                 else args.heartbeat)
    try:
        if args.what == "sweep":
            document, farm_result = farm_scale_sweep(
                quick=args.quick, seed=args.seed,
                workers=args.workers, heartbeat=heartbeat,
                flight_dir=args.flight_dir, on_event=progress,
                checkpoint_path=checkpoint,
                handle_signals=bool(checkpoint),
            )
            failed = bool(document["errors"])
        else:
            document, farm_result = farm_scale(
                n_cores=spec.n_cores,
                threads_per_core=spec.threads_per_core,
                n_tasks=args.tasks,
                seed=args.seed,
                utilization=args.utilization,
                horizon_periods=args.horizon_periods,
                engine=args.engine,
                workers=args.workers,
                heartbeat=heartbeat,
                flight_dir=args.flight_dir,
                on_event=progress,
                checkpoint_path=checkpoint,
                handle_signals=bool(checkpoint),
            )
            failed = bool(document["totals"]["violations"]
                          or document["total_crashes"]
                          or document["errors"])
    except FarmInterrupted as interrupt:
        print(f"scale: {interrupt}", file=out)
        return 3
    rendered = render_scale_report(document)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote merged report to {args.out}", file=out)
    else:
        out.write(rendered)
    _farm_status(farm_result, out)
    if args.what == "campaign":
        totals = document["totals"]
        wall = farm_result.stats.get("wall_seconds") or 0
        throughput = (f"{totals['jobs_done'] / wall * 60.0:,.0f} "
                      f"jobs/minute" if wall else "n/a")
        print(
            f"scale: {spec.n_cores}c x {spec.threads_per_core}t, "
            f"{totals['tasks']} task(s), {totals['jobs_done']} job(s) "
            f"in {totals['events']} kernel events — {throughput} "
            f"({document['engine']} engine)",
            file=out,
        )
    if farm_result.quarantined:
        return 2
    return 1 if failed else 0


def _snapshot_spec(args, out):
    """Program spec from ``repro snapshot`` arguments (or ``None`` +
    error message on stderr-equivalent ``out``)."""
    if args.program == "overheads":
        return {"kind": "overheads", "np": args.n_parallel,
                "jobs": args.jobs, "policy": args.policy,
                "load": args.load.upper(), "seed": args.seed,
                "engine": args.engine}
    if args.program == "trade":
        return {"kind": "trade", "seconds": args.seconds,
                "policy": args.policy, "load": args.load.upper(),
                "seed": args.seed, "engine": args.engine}
    if args.program == "faults":
        from repro.faults.campaign import SCENARIOS

        if args.scenario not in SCENARIOS:
            print(f"unknown scenario {args.scenario!r}; valid: "
                  f"{sorted(SCENARIOS)}", file=out)
            return None
        return {"kind": "faults", "scenario": args.scenario,
                "seconds": args.seconds, "seed": args.seed,
                "engine": args.engine}
    if args.artifact is None:
        print("--program check needs --artifact FILE (a repro "
              "artifact supplying the scenario)", file=out)
        return None
    from repro.check.shrink import load_artifact
    from repro.check.timetravel import artifact_check_spec

    return artifact_check_spec(load_artifact(args.artifact),
                               engine=args.engine)


def cmd_snapshot(args, out):
    import json as json_module

    from repro.snapshot import (
        SnapshotError,
        build_program,
        inspect_snapshot,
        load_snapshot,
        resume_to_end,
        write_snapshot,
    )
    from repro.snapshot import snapshot as take_snapshot

    def emit_payload(payload):
        rendered = json_module.dumps(payload, indent=2,
                                     sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered)
            print(f"wrote payload to {args.out}", file=out)
        else:
            out.write(rendered)

    try:
        if args.action == "inspect":
            if not args.snapshot:
                print("inspect needs --snapshot FILE", file=out)
                return 2
            summary = inspect_snapshot(load_snapshot(args.snapshot))
            out.write(json_module.dumps(summary, indent=2,
                                        sort_keys=True) + "\n")
            return 0
        if args.action == "resume":
            if not args.snapshot:
                print("resume needs --snapshot FILE", file=out)
                return 2
            document = load_snapshot(args.snapshot)
            payload = resume_to_end(document,
                                    expect_backend=args.expect_engine)
            emit_payload(payload)
            return 0

        spec = _snapshot_spec(args, out)
        if spec is None:
            return 2
        run = build_program(spec).start()
        if args.action == "dump":
            if args.at_events is None or not args.snapshot:
                print("dump needs --at-events N and --snapshot FILE",
                      file=out)
                return 2
            document = take_snapshot(run, at_events=args.at_events)
            write_snapshot(args.snapshot, document)
            print(f"wrote snapshot of {spec['kind']} at "
                  f"{args.at_events} events ({document['backend']} "
                  f"backend) to {args.snapshot}", file=out)
            return 0
        emit_payload(run.finish())
        return 0
    except SnapshotError as error:
        print(f"snapshot: {error}", file=out)
        return 2


_COMMANDS = {
    "overheads": cmd_overheads,
    "sweep": cmd_sweep,
    "trade": cmd_trade,
    "figures": cmd_figures,
    "admit": cmd_admit,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "report": cmd_report,
    "faults": cmd_faults,
    "check": cmd_check,
    "farm": cmd_farm,
    "scale": cmd_scale,
    "snapshot": cmd_snapshot,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RT-Seed reproduction: middleware for semi-fixed-"
                    "priority scheduling (MIDDLEWARE 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_overheads_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_trade_parser(subparsers)
    _add_figures_parser(subparsers)
    _add_admit_parser(subparsers)
    _add_trace_parser(subparsers)
    _add_metrics_parser(subparsers)
    _add_report_parser(subparsers)
    _add_faults_parser(subparsers)
    _add_check_parser(subparsers)
    _add_farm_parser(subparsers)
    _add_scale_parser(subparsers)
    _add_snapshot_parser(subparsers)
    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
