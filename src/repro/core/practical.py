"""Middleware support for the practical imprecise computation model.

The paper's future work (Section VII) executed on the same substrate:
a task whose job is a chain of ``K`` mandatory parts with a stage of
parallel optional parts between consecutive ones, each stage with its
own offline optional deadline (see :mod:`repro.model.practical`).

The Figure 6 protocol generalizes naturally: after mandatory part
``j`` the mandatory thread wakes the stage-``j`` optional threads
(individually, never broadcast), each arms its one-shot timer for
``OD^j``, and when all of them end the mandatory thread proceeds with
mandatory part ``j + 1``.  The final mandatory part plays the wind-up
part's role.
"""

from repro.core.queues import nrtq_priority
from repro.core.task import Task, TaskContext
from repro.core.termination import SigjmpTermination
from repro.simkernel.sync import CondVar, Mutex
from repro.simkernel.syscalls import (
    ClockNanosleep,
    CondSignal,
    CondWait,
    GetTime,
    MutexLock,
    MutexUnlock,
    SchedSetAffinity,
    SchedSetScheduler,
    Spawn,
)
from repro.simkernel.thread import KernelThread, SchedPolicy
from repro.simkernel.timers import KTimer


class PracticalTask(Task):
    """User API for multi-mandatory-part tasks.

    Subclasses override :meth:`exec_mandatory_part` (called with the
    phase index ``0 .. n_phases-1``) and :meth:`exec_optional_stage`
    (called with the stage index and the part index within the stage).

    :param n_phases: number of mandatory parts ``K >= 2``.
    :param parts_per_stage: parallel optional parts per stage.
    """

    def __init__(self, name, period, n_phases, parts_per_stage=1):
        if n_phases < 2:
            raise ValueError(f"{name}: need at least two mandatory parts")
        if parts_per_stage < 1:
            raise ValueError(f"{name}: need >= 1 part per stage")
        super().__init__(name, period, n_parallel=parts_per_stage)
        self.n_phases = n_phases
        self.parts_per_stage = parts_per_stage

    def exec_mandatory_part(self, ctx, phase):
        """Mandatory part ``phase`` (generator).  Default: no work."""
        return
        yield  # pragma: no cover

    def exec_optional_stage(self, ctx, stage, part_index):
        """One optional part of ``stage`` (generator).  Default: none."""
        return
        yield  # pragma: no cover


class PracticalWorkloadTask(PracticalTask):
    """Fixed-length parts, for tests and benches."""

    def __init__(self, name, mandatory_parts, optional_length, period,
                 parts_per_stage=1, chunk=None):
        super().__init__(name, period, len(mandatory_parts),
                         parts_per_stage)
        self.mandatory_parts = [float(m) for m in mandatory_parts]
        self.optional_length = float(optional_length)
        self.chunk = float(chunk) if chunk else max(
            self.optional_length / 50.0, 1.0
        )

    def exec_mandatory_part(self, ctx, phase):
        yield ctx.compute(self.mandatory_parts[phase],
                          tag=f"mandatory[{phase}]")

    def exec_optional_stage(self, ctx, stage, part_index):
        remaining = self.optional_length
        progress = 0.0
        while remaining > 0:
            step = min(self.chunk, remaining)
            yield ctx.compute(step, tag=f"optional[{stage}][{part_index}]")
            remaining -= step
            progress += step
            ctx.publish((stage, part_index), progress)

    def to_model(self):
        from repro.model.practical import PracticalImpreciseTask

        return PracticalImpreciseTask(
            self.name,
            self.mandatory_parts,
            [[self.optional_length] * self.parts_per_stage
             for _ in range(self.n_phases - 1)],
            self.period,
        )


class PhaseProbe:
    """Timestamps of one job of a practical task."""

    def __init__(self, job_index, release, deadline_abs, stage_ods,
                 parts_per_stage):
        self.job_index = job_index
        self.release = release
        self.deadline_abs = deadline_abs
        self.stage_ods = list(stage_ods)
        self.mandatory_start = []
        self.mandatory_end = []
        self.stage_fates = [
            ["discarded"] * parts_per_stage for _ in stage_ods
        ]
        self.completed = None

    @property
    def deadline_met(self):
        return self.completed is not None and \
            self.completed <= self.deadline_abs + 1e-3


class PracticalRealTimeProcess:
    """The multi-phase Figure 6 protocol.

    :param stage_optional_deadlines: relative ``OD^1 .. OD^{K-1}``.
    :param optional_cpus: CPUs for the stage's parallel optional parts
        (shared by every stage; parts never migrate).
    """

    def __init__(self, kernel, task, priority, cpu, optional_cpus,
                 stage_optional_deadlines, n_jobs, strategy=None,
                 start_time=None):
        if not isinstance(task, PracticalTask):
            raise TypeError("task must be a PracticalTask")
        if len(stage_optional_deadlines) != task.n_phases - 1:
            raise ValueError(
                f"{task.name}: {task.n_phases} phases need "
                f"{task.n_phases - 1} optional deadlines"
            )
        ods = list(stage_optional_deadlines)
        if any(b <= a for a, b in zip(ods, ods[1:])):
            raise ValueError(
                f"{task.name}: optional deadlines must increase: {ods}"
            )
        if len(optional_cpus) != task.parts_per_stage:
            raise ValueError(
                f"{task.name}: {len(optional_cpus)} CPUs for "
                f"{task.parts_per_stage} parts per stage"
            )
        self.kernel = kernel
        self.task = task
        self.priority = priority
        self.cpu = cpu
        self.optional_cpus = list(optional_cpus)
        self.stage_ods = ods
        self.n_jobs = n_jobs
        self.strategy = strategy or SigjmpTermination()
        self.start_time = (
            float(start_time) if start_time is not None else task.period
        )
        self.probes = []
        self._active = True
        parts = task.parts_per_stage
        self._opt_mutex = [Mutex(f"{task.name}-popt-mutex-{k}")
                           for k in range(parts)]
        self._opt_cond = [CondVar(f"{task.name}-popt-cond-{k}")
                          for k in range(parts)]
        self._opt_pending = [None] * parts
        self._done_mutex = Mutex(f"{task.name}-pdone-mutex")
        self._mand_cond = CondVar(f"{task.name}-pmand-cond")
        self._done_count = 0
        self.mandatory_thread = None
        self.optional_threads = []

    def spawn(self):
        if self.mandatory_thread is not None:
            raise RuntimeError(f"{self.task.name}: already spawned")
        self.mandatory_thread = KernelThread(
            f"{self.task.name}-mandatory",
            self._mandatory_body,
            cpu=self.cpu,
            priority=self.priority,
            policy=SchedPolicy.FIFO,
        )
        self.kernel.spawn(self.mandatory_thread)
        return self

    @property
    def optional_priority(self):
        return nrtq_priority(min(self.priority, 98))

    def _mandatory_body(self, thread):
        task = self.task
        yield SchedSetScheduler(SchedPolicy.FIFO, self.priority)
        yield SchedSetAffinity(self.cpu)
        for part_index in range(task.parts_per_stage):
            optional_thread = KernelThread(
                f"{task.name}-optional-{part_index}",
                self._make_optional_body(part_index),
                cpu=self.cpu,
                priority=self.optional_priority,
                policy=SchedPolicy.FIFO,
            )
            self.optional_threads.append(optional_thread)
            yield Spawn(optional_thread)

        for job_index in range(self.n_jobs):
            release = self.start_time + job_index * task.period
            yield ClockNanosleep(release)
            probe = PhaseProbe(
                job_index,
                release,
                release + task.deadline,
                [release + od for od in self.stage_ods],
                task.parts_per_stage,
            )
            self.probes.append(probe)
            ctx = TaskContext(task, job_index, release,
                              probe.stage_ods[0], probe.deadline_abs)

            for phase in range(task.n_phases):
                probe.mandatory_start.append((yield GetTime()))
                yield from task.exec_mandatory_part(ctx, phase)
                now = yield GetTime()
                probe.mandatory_end.append(now)
                if phase >= task.n_phases - 1:
                    break
                od_abs = probe.stage_ods[phase]
                if now >= od_abs:
                    # no time: this stage's parts are discarded
                    continue
                token = (job_index, phase, ctx, od_abs)
                for part_index in range(task.parts_per_stage):
                    yield MutexLock(self._opt_mutex[part_index])
                    self._opt_pending[part_index] = token
                    yield CondSignal(self._opt_cond[part_index])
                    yield MutexUnlock(self._opt_mutex[part_index])
                yield MutexLock(self._done_mutex)
                while self._done_count < task.parts_per_stage:
                    yield CondWait(self._mand_cond, self._done_mutex)
                self._done_count = 0
                yield MutexUnlock(self._done_mutex)

            probe.completed = yield GetTime()
            probe.results = ctx.collect()

        self._active = False
        for part_index in range(task.parts_per_stage):
            yield MutexLock(self._opt_mutex[part_index])
            yield CondSignal(self._opt_cond[part_index])
            yield MutexUnlock(self._opt_mutex[part_index])

    def _make_optional_body(self, part_index):
        def body(thread):
            task = self.task
            yield SchedSetScheduler(SchedPolicy.FIFO,
                                    self.optional_priority)
            yield SchedSetAffinity(self.optional_cpus[part_index])
            timer = KTimer(thread,
                           name=f"{task.name}-podt-{part_index}")
            yield from self.strategy.setup(timer)
            while True:
                yield MutexLock(self._opt_mutex[part_index])
                while self._opt_pending[part_index] is None and \
                        self._active:
                    yield CondWait(self._opt_cond[part_index],
                                   self._opt_mutex[part_index])
                token = self._opt_pending[part_index]
                self._opt_pending[part_index] = None
                yield MutexUnlock(self._opt_mutex[part_index])
                if token is None:
                    break
                job_index, stage, ctx, od_abs = token
                body_gen = task.exec_optional_stage(ctx, stage,
                                                    part_index)
                outcome = yield from self.strategy.run(body_gen, timer,
                                                       od_abs)
                probe = self.probes[job_index]
                probe.stage_fates[stage][part_index] = outcome.fate
                yield MutexLock(self._done_mutex)
                self._done_count += 1
                if self._done_count == task.parts_per_stage:
                    yield CondSignal(self._mand_cond)
                yield MutexUnlock(self._done_mutex)

        return body

    @property
    def deadline_misses(self):
        return [p for p in self.probes if not p.deadline_met]
