"""Priority-band mapping: HPQ / RTQ / NRTQ / SQ (Figures 4 and 5).

RT-Seed does not implement its own ready queues — that is the point of
the middleware approach.  It *maps* the four conceptual queues onto
Linux's per-CPU SCHED_FIFO levels:

* **HPQ** — priority 99, reserved for the highest-priority task (e.g. a
  task RM-US classifies as heavy; footnote 1).
* **RTQ** — priorities [50, 98]: mandatory and wind-up parts, RM order.
* **NRTQ** — priorities [1, 49]: parallel optional parts.  The gap
  between a task's mandatory priority and its optional priority is
  exactly 49 (priority 90 mandatory -> priority 41 optional), so RM
  order is preserved inside NRTQ and *every* RTQ task outranks *every*
  NRTQ task.
* **SQ** — not a priority level: sleeping threads (blocked in
  ``clock_nanosleep`` / ``pthread_cond_wait``) simply are not runnable.

This module owns the arithmetic and the validation; it is deliberately
free of kernel state.
"""

from repro.simkernel.thread import ThreadState

#: Priority reserved for the highest-priority task (footnote 1).
HPQ_PRIORITY = 99

#: Mandatory/wind-up (real-time) band, inclusive.
RTQ_RANGE = (50, 98)

#: Parallel-optional (non-real-time) band, inclusive.
NRTQ_RANGE = (1, 49)

#: The fixed distance between a task's mandatory and optional priorities.
PRIORITY_GAP = 49


class PriorityBandError(ValueError):
    """A priority fell outside its designated band."""


def rtq_priority(rank):
    """Priority for the task of RM rank ``rank`` (0 = highest).

    Rank 0 gets 98, rank 1 gets 97, ... down to 50.
    """
    priority = RTQ_RANGE[1] - rank
    if priority < RTQ_RANGE[0]:
        raise PriorityBandError(
            f"RM rank {rank} does not fit in the RTQ band {RTQ_RANGE} "
            f"({RTQ_RANGE[1] - RTQ_RANGE[0] + 1} levels)"
        )
    return priority


def nrtq_priority(mandatory_priority):
    """Optional-part priority for a given mandatory priority.

    Section IV-B: "the difference between the priorities of the mandatory
    and parallel optional threads is 49" — priority 90 maps to 41.
    """
    if not RTQ_RANGE[0] <= mandatory_priority <= RTQ_RANGE[1]:
        raise PriorityBandError(
            f"mandatory priority {mandatory_priority} outside RTQ band "
            f"{RTQ_RANGE}"
        )
    optional = mandatory_priority - PRIORITY_GAP
    assert NRTQ_RANGE[0] <= optional <= NRTQ_RANGE[1]
    return optional


def classify_priority(priority):
    """Which conceptual queue a priority level belongs to."""
    if priority == HPQ_PRIORITY:
        return "HPQ"
    if RTQ_RANGE[0] <= priority <= RTQ_RANGE[1]:
        return "RTQ"
    if NRTQ_RANGE[0] <= priority <= NRTQ_RANGE[1]:
        return "NRTQ"
    raise PriorityBandError(f"priority {priority} is in no RT-Seed band")


class ReadyQueueView:
    """Introspection over a kernel's threads in RT-Seed band terms.

    Used by tests and diagnostics to assert Figure 5 invariants ("every
    task in RTQ has higher priority than every task in NRTQ", "SQ holds
    tasks sleeping until their optional deadlines or next releases").
    """

    def __init__(self, kernel):
        self.kernel = kernel

    def _threads(self, states):
        return [t for t in self.kernel.threads
                if t.state in states and t.alive]

    def hpq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if t.priority == HPQ_PRIORITY
        ]

    def rtq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if RTQ_RANGE[0] <= t.priority <= RTQ_RANGE[1]
        ]

    def nrtq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if NRTQ_RANGE[0] <= t.priority <= NRTQ_RANGE[1]
        ]

    def sq(self):
        """Sleeping/blocked threads (the SQ of Figure 4)."""
        return self._threads({ThreadState.BLOCKED})
