"""Priority-band mapping: HPQ / RTQ / NRTQ / SQ (Figures 4 and 5).

RT-Seed does not implement its own ready queues — that is the point of
the middleware approach.  It *maps* the four conceptual queues onto
Linux's per-CPU SCHED_FIFO levels:

* **HPQ** — priority 99, reserved for the highest-priority task (e.g. a
  task RM-US classifies as heavy; footnote 1).
* **RTQ** — priorities [50, 98]: mandatory and wind-up parts, RM order.
* **NRTQ** — priorities [1, 49]: parallel optional parts.  The gap
  between a task's mandatory priority and its optional priority is
  exactly 49 (priority 90 mandatory -> priority 41 optional), so RM
  order is preserved inside NRTQ and *every* RTQ task outranks *every*
  NRTQ task.
* **SQ** — not a priority level: sleeping threads (blocked in
  ``clock_nanosleep`` / ``pthread_cond_wait``) simply are not runnable.

The arithmetic and validation are owned by the RMWP band scheduling
class (:class:`repro.engine.classes.RMWPBandClass`) — it is priority-
ordering logic, shared with the theory-level simulator — and re-exported
here under the historical names.  This module adds the kernel-state
introspection view used by tests and diagnostics.
"""

from repro.engine.classes import (  # noqa: F401  (re-exported API)
    HPQ_PRIORITY,
    NRTQ_RANGE,
    PRIORITY_GAP,
    RTQ_RANGE,
    PriorityBandError,
    classify_priority,
    nrtq_priority,
    rtq_priority,
)
from repro.simkernel.thread import ThreadState

__all__ = [
    "HPQ_PRIORITY",
    "RTQ_RANGE",
    "NRTQ_RANGE",
    "PRIORITY_GAP",
    "PriorityBandError",
    "classify_priority",
    "nrtq_priority",
    "rtq_priority",
    "ReadyQueueView",
]


class ReadyQueueView:
    """Introspection over a kernel's threads in RT-Seed band terms.

    Used by tests and diagnostics to assert Figure 5 invariants ("every
    task in RTQ has higher priority than every task in NRTQ", "SQ holds
    tasks sleeping until their optional deadlines or next releases").
    """

    def __init__(self, kernel):
        self.kernel = kernel

    def _threads(self, states):
        return [t for t in self.kernel.threads
                if t.state in states and t.alive]

    def hpq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if t.priority == HPQ_PRIORITY
        ]

    def rtq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if RTQ_RANGE[0] <= t.priority <= RTQ_RANGE[1]
        ]

    def nrtq(self):
        return [
            t for t in self._threads({ThreadState.READY, ThreadState.RUNNING})
            if NRTQ_RANGE[0] <= t.priority <= NRTQ_RANGE[1]
        ]

    def sq(self):
        """Sleeping/blocked threads (the SQ of Figure 4)."""
        return self._threads({ThreadState.BLOCKED})
