"""RT-Seed: the middleware runner (Section IV).

``RTSeed`` is the public entry point a trading application uses:

.. code-block:: python

    from repro.core import RTSeed, WorkloadTask
    from repro.simkernel.time_units import MSEC, SEC

    seed = RTSeed()                                  # Xeon Phi, no load
    task = WorkloadTask("tau1", 250 * MSEC, 1 * SEC, 250 * MSEC, 1 * SEC,
                        n_parallel=57)
    seed.add_task(task, n_jobs=100, policy="one_by_one")
    result = seed.run()
    print(result.tasks["tau1"].mean_delta_us("e"))

It owns the offline work the paper assigns to the middleware: computing
RM priorities inside the RTQ band (plus the HPQ for RM-US-heavy tasks),
per-partition optional deadlines via the P-RMWP plan, and parallel
optional part placement via the Figure 8 assignment policies.  At run
time it merely sets POSIX scheduling attributes and lets the (simulated)
kernel schedule — exactly the "no kernel modifications" claim.
"""

from repro.core.policies import AssignmentPolicy, get_policy
from repro.core.process import RealTimeProcess
from repro.core.task import Task
from repro.engine.backend import get_backend
from repro.engine.classes import get_sched_class
from repro.hardware.loads import BackgroundLoad, apply_load
from repro.hardware.overheads import XeonPhiCostModel
from repro.hardware.xeonphi import xeon_phi_topology
from repro.model.optional_deadline import optional_deadlines_rmwp
from repro.sched.rmus import rm_us_threshold
from repro.simkernel.costmodel import ZeroCostModel
from repro.simkernel.kernel import Kernel


class TaskResult:
    """Per-task outcome of a middleware run."""

    def __init__(self, process):
        self.task = process.task
        self.process = process
        self.probes = process.probes

    def deltas_us(self, which):
        return self.process.deltas_us(which)

    def mean_delta_us(self, which):
        values = self.deltas_us(which)
        return sum(values) / len(values) if values else None

    def max_delta_us(self, which):
        values = self.deltas_us(which)
        return max(values) if values else None

    @property
    def deadline_misses(self):
        return self.process.deadline_misses

    @property
    def all_deadlines_met(self):
        return not self.deadline_misses

    @property
    def total_optional_time(self):
        return self.process.total_optional_time

    @property
    def fates(self):
        """Count of completed / terminated / discarded optional parts."""
        counts = {"completed": 0, "terminated": 0, "discarded": 0}
        for probe in self.probes:
            for fate in probe.optional_fate:
                counts[fate] += 1
        return counts

    def job_results(self):
        """The wind-up-visible results each job collected."""
        return [probe.results for probe in self.probes]


class RTSeedResult:
    """Outcome of :meth:`RTSeed.run`: per-task results plus kernel stats."""

    def __init__(self, tasks, kernel):
        self.tasks = tasks
        self.kernel = kernel

    @property
    def all_deadlines_met(self):
        return all(t.all_deadlines_met for t in self.tasks.values())

    def __repr__(self):
        met = "all deadlines met" if self.all_deadlines_met else "MISSES"
        return f"<RTSeedResult tasks={sorted(self.tasks)} {met}>"


class RTSeed:
    """The middleware.

    :param topology: machine to run on (default: Xeon Phi 3120A).
    :param load: background load condition (Section V-B).
    :param cost_model: overhead model; ``"xeonphi"`` (default) installs
        the calibrated model for ``load``, ``"zero"`` runs overhead-free
        (for functional tests), or pass any
        :class:`~repro.simkernel.costmodel.CostModel`.
    :param seed: noise seed for the calibrated model.
    :param use_hpq: reserve priority 99 for tasks whose utilization
        exceeds the RM-US threshold (footnote 1).
    :param watchdog: optional
        :class:`~repro.core.resilience.OverrunWatchdog` shared by every
        process; force-discards optional parts whose termination
        strategy fails to stop them.
    :param degrade: optional
        :class:`~repro.core.resilience.DegradedModeController` shared by
        every process — system-wide optional-part shedding under
        sustained deadline misses.
    :param engine: execution-core backend — ``"reference"`` /
        ``"fast"`` / an :class:`~repro.engine.backend.EngineBackend` /
        ``None`` (process default, ``$RTSEED_ENGINE``).  Selects the
        event engine, the run-queue structures and the cost-model noise
        mode together; seeded runs are byte-identical across backends
        (``repro check --engine-diff`` enforces it).
    """

    def __init__(self, topology=None, load=BackgroundLoad.NONE,
                 cost_model="xeonphi", seed=0, use_hpq=False,
                 watchdog=None, degrade=None, engine=None):
        self.topology = topology if topology is not None \
            else xeon_phi_topology()
        self.load = load
        backend = get_backend(engine)
        self.backend = backend
        apply_load(self.topology, load)
        if cost_model == "xeonphi":
            cost_model = XeonPhiCostModel(self.topology, load, seed=seed,
                                          noise=backend.noise_mode)
        elif cost_model == "zero":
            cost_model = ZeroCostModel()
        self.kernel = Kernel(self.topology, cost_model=cost_model,
                             backend=backend)
        self.use_hpq = use_hpq
        self.watchdog = watchdog
        self.degrade = degrade
        if degrade is not None and degrade.probes is None:
            degrade.probes = self.kernel.probes
        self._entries = []
        self._ran = False

    @property
    def probes(self):
        """The kernel's probe bus — subscribe tracers, metrics
        collectors, or trace exporters here before :meth:`run`."""
        return self.kernel.probes

    def add_task(self, task, n_jobs, cpu=0, policy="one_by_one",
                 optional_cpus=None, optional_deadline=None, model=None,
                 strategy=None, start_time=None):
        """Register a task.

        :param task: a :class:`repro.core.task.Task`.
        :param n_jobs: jobs to execute before the process retires.
        :param cpu: CPU for the mandatory thread.
        :param policy: assignment-policy name or instance for the
            parallel optional parts (ignored when ``optional_cpus``
            given).
        :param optional_cpus: explicit per-part CPU list.
        :param optional_deadline: relative OD; computed from the task
            model (RMWP Theorem 2 per partition) when omitted.
        :param model: analytic task model; taken from ``task.to_model()``
            when available.
        :param strategy: termination strategy (default sigsetjmp).
        """
        if self._ran:
            raise RuntimeError("middleware already ran")
        if not isinstance(task, Task):
            raise TypeError(f"expected a core.Task, got {type(task).__name__}")
        if any(entry["task"].name == task.name for entry in self._entries):
            raise ValueError(f"duplicate task name {task.name!r}")
        if optional_cpus is None:
            if isinstance(policy, AssignmentPolicy):
                policy_obj = policy
            else:
                policy_obj = get_policy(policy)
            optional_cpus = policy_obj.assign(self.topology,
                                              task.n_parallel)
        if model is None and hasattr(task, "to_model"):
            model = task.to_model()
        if model is None and optional_deadline is None:
            raise ValueError(
                f"{task.name}: need either a task model or an explicit "
                f"optional deadline"
            )
        self._entries.append(
            {
                "task": task,
                "n_jobs": n_jobs,
                "cpu": cpu,
                "optional_cpus": list(optional_cpus),
                "optional_deadline": optional_deadline,
                "model": model,
                "strategy": strategy,
                "start_time": start_time,
            }
        )

    def _plan(self):
        """Offline planning: RM priorities per CPU + optional deadlines.

        Ordering and band arithmetic are the RMWP band scheduling
        class's (:class:`repro.engine.classes.RMWPBandClass`) — the same
        object the theory simulator dispatches through — so "shortest
        period first, name breaks ties" and the Figure 5 rank-to-level
        mapping exist exactly once.
        """
        sched_class = get_sched_class("rmwp")
        by_cpu = {}
        for entry in self._entries:
            by_cpu.setdefault(entry["cpu"], []).append(entry)

        threshold = rm_us_threshold(self.topology.n_cpus) \
            if self.use_hpq else None

        for entries in by_cpu.values():
            models = [e["model"] for e in entries if e["model"] is not None]
            deadlines = optional_deadlines_rmwp(models) if models else {}
            ordered = sorted(
                entries,
                key=lambda e: sched_class.task_sort_key(e["task"]),
            )
            rank = 0
            for entry in ordered:
                model = entry["model"]
                if (threshold is not None and model is not None
                        and model.utilization > threshold):
                    entry["priority"] = sched_class.hpq_priority
                else:
                    entry["priority"] = sched_class.mandatory_priority(rank)
                    rank += 1
                if entry["optional_deadline"] is None:
                    entry["optional_deadline"] = deadlines[
                        entry["task"].name
                    ]

    def start(self):
        """Plan and spawn every process without running the kernel.

        The snapshot layer (:mod:`repro.snapshot`) uses this split to
        drive the engine partially (``kernel.engine.run(max_events=N)``
        up to a barrier, then :meth:`finish`); :meth:`run` is the
        one-shot composition everybody else calls.
        """
        if not self._entries:
            raise RuntimeError("no tasks registered")
        if self._ran:
            raise RuntimeError("middleware already ran")
        self._ran = True
        self._plan()
        results = {}
        for entry in self._entries:
            process = RealTimeProcess(
                self.kernel,
                entry["task"],
                priority=entry["priority"],
                cpu=entry["cpu"],
                optional_cpus=entry["optional_cpus"],
                optional_deadline=entry["optional_deadline"],
                n_jobs=entry["n_jobs"],
                strategy=entry["strategy"],
                start_time=entry["start_time"],
                watchdog=self.watchdog,
                degrade=self.degrade,
            ).spawn()
            results[entry["task"].name] = TaskResult(process)
        self._results = results
        return results

    def finish(self, max_events=None):
        """Drain the kernel to completion and build the result
        (requires :meth:`start`)."""
        self.kernel.run_to_completion(max_events=max_events)
        if self.degrade is not None:
            self.degrade.close(self.kernel.now)
        return RTSeedResult(self._results, self.kernel)

    def run(self, max_events=None):
        """Plan, spawn every process, and run the kernel to completion."""
        self.start()
        return self.finish(max_events=max_events)
