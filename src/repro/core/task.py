"""The user-facing ``Task`` API (Section IV-C).

The paper implements a parallel-extended imprecise task as ``class Task``
with three primary member functions; this module is the Python analog:

* :meth:`Task.exec_mandatory` — the mandatory part,
* :meth:`Task.exec_optional` — one parallel optional part,
* :meth:`Task.exec_windup` — the wind-up part.

Each is a *generator* receiving a :class:`TaskContext` and yielding
simulated-kernel requests (usually ``ctx.compute(...)``).  Optional
parts must be written so that termination at any yield point is safe:
no resource reservation, no lock acquisition — pure CPU-bound
refinement, exactly the restriction Section IV-D imposes on
``sigsetjmp``/``siglongjmp`` termination.

Results flow through :meth:`TaskContext.publish` /
:meth:`TaskContext.collect`: an optional part publishes whatever it has
refined so far after each chunk; the wind-up part collects whatever the
parts managed to publish before completion or termination.  That is the
imprecise-computation contract — a terminated part contributes its
latest (lower-QoS) published value.
"""

from repro.simkernel.syscalls import Compute, GetCpu, GetTime


class TaskContext:
    """Per-job execution context handed to the part generators.

    Wraps the syscall vocabulary for user code and carries the
    publish/collect mailbox connecting optional parts to the wind-up
    part.
    """

    def __init__(self, task, job_index, release, optional_deadline,
                 deadline):
        self.task = task
        self.job_index = job_index
        self.release = release
        self.optional_deadline = optional_deadline
        self.deadline = deadline
        self._mailbox = {}
        #: free-form per-job scratch space: the mandatory part stashes
        #: inputs (e.g. the fetched market tick) here for the optional
        #: and wind-up parts.
        self.scratch = {}

    # -- syscall helpers (for readability in user code) ---------------------

    @staticmethod
    def compute(duration, tag=None):
        """CPU-bound work of ``duration`` nanoseconds."""
        return Compute(duration, tag=tag)

    @staticmethod
    def now():
        """Request the current simulated time."""
        return GetTime()

    @staticmethod
    def cpu():
        """Request the CPU id the caller runs on."""
        return GetCpu()

    # -- imprecise-computation mailbox ---------------------------------------

    def publish(self, part_index, value):
        """Record a part's latest (possibly partial) result.

        Safe at any point: assignment is atomic in the simulation, and a
        part terminated right after publishing simply leaves its latest
        value for the wind-up part.
        """
        self._mailbox[part_index] = value

    def collect(self):
        """All published results, keyed by part index (wind-up part)."""
        return dict(self._mailbox)


class Task:
    """A parallel-extended imprecise task (user subclass point).

    :param name: task name.
    :param period: period ``T`` in nanoseconds; ``D = T``.
    :param n_parallel: number of parallel optional parts ``np``.

    Subclasses override the three ``exec_*`` generators.  The default
    implementations do nothing (zero-length parts).
    """

    def __init__(self, name, period, n_parallel=1):
        if period <= 0:
            raise ValueError(f"{name}: period must be positive")
        if n_parallel < 1:
            raise ValueError(f"{name}: need at least one optional part")
        self.name = name
        self.period = float(period)
        self.deadline = float(period)
        self.n_parallel = n_parallel

    def exec_mandatory(self, ctx):
        """The mandatory part (generator).  Default: no work."""
        return
        yield  # pragma: no cover - makes this a generator

    def exec_optional(self, ctx, part_index):
        """One parallel optional part (generator).  Default: no work.

        Must be safe to terminate at any yield point: CPU-bound chunks
        only, publish partial results via ``ctx.publish``.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def exec_windup(self, ctx):
        """The wind-up part (generator).  Default: no work."""
        return
        yield  # pragma: no cover - makes this a generator

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name!r} T={self.period:.0f} "
            f"np={self.n_parallel}>"
        )


class WorkloadTask(Task):
    """A synthetic task with fixed part lengths — the evaluation workload.

    Section V-A: ``m = 250 ms``, ``o = 1 s`` (every optional part always
    overruns), ``w = 250 ms``, ``T = 1 s``.  Optional work is issued in
    ``chunk`` increments so a periodic-check termination strategy has
    check points; the default chunk is fine enough not to distort the
    timer-based strategies.

    :param mandatory: mandatory WCET (ns).
    :param optional: per-part optional execution time (ns).
    :param windup: wind-up WCET (ns).
    """

    def __init__(self, name, mandatory, optional, windup, period,
                 n_parallel=1, chunk=None):
        super().__init__(name, period, n_parallel=n_parallel)
        if mandatory <= 0 or windup <= 0:
            raise ValueError(f"{name}: mandatory/wind-up must be positive")
        if optional < 0:
            raise ValueError(f"{name}: optional must be >= 0")
        self.mandatory = float(mandatory)
        self.optional = float(optional)
        self.windup = float(windup)
        self.chunk = float(chunk) if chunk else max(optional / 100.0, 1.0)

    def exec_mandatory(self, ctx):
        yield ctx.compute(self.mandatory, tag="mandatory")

    def exec_optional(self, ctx, part_index):
        remaining = self.optional
        progress = 0.0
        chunk = self.chunk
        tag = f"optional[{part_index}]"
        publish = ctx.publish
        while remaining > 0:
            step = chunk if chunk < remaining else remaining
            yield Compute(step, tag=tag)
            remaining -= step
            progress += step
            publish(part_index, progress)

    def exec_windup(self, ctx):
        yield ctx.compute(self.windup, tag="windup")

    def to_model(self):
        """The analytic model of this task (for OD/schedulability)."""
        from repro.model.task_model import ParallelExtendedImpreciseTask

        return ParallelExtendedImpreciseTask(
            self.name,
            self.mandatory,
            [self.optional] * self.n_parallel,
            self.windup,
            self.period,
        )
