"""Termination of parallel optional parts in user space (Section IV-D).

The hard problem RT-Seed solves in user space: when the optional
deadline expires, an overrunning optional part must stop *now*, without
kernel modifications.  Three implementations, matching Table I:

=======================  =====================  ========================
implementation           any-time termination   signal-mask restoration
=======================  =====================  ========================
sigsetjmp / siglongjmp   yes                    yes
periodic check           no (chunk granularity) (unnecessary — no signal)
C++ try / catch          yes                    **no** — the next job's
                                                timer interrupt never
                                                fires
=======================  =====================  ========================

Each strategy wraps the user's ``exec_optional`` generator and returns
an :class:`OptionalOutcome`.

When a probe bus is passed to :meth:`TerminationStrategy.run`, each
outcome is published as ``termination.completed`` (with the part's
duration) or ``termination.terminated`` (with the overrun past the
optional deadline — the user-space termination latency the paper's
Table I trades off).  The strategy instances in :data:`STRATEGIES` are
shared, so the bus travels as a call argument, never instance state.
"""

from repro.simkernel.errors import SignalUnwind
from repro.simkernel.signals import SIGALRM, UnwindDisposition
from repro.simkernel.syscalls import (
    GetTime,
    SetSignalMask,
    Sigaction,
    TimerSettime,
)


class OptionalOutcome:
    """What happened to one optional part in one job."""

    __slots__ = ("completed", "ended_at", "started_at")

    def __init__(self, completed, started_at, ended_at):
        self.completed = completed
        self.started_at = started_at
        self.ended_at = ended_at

    @property
    def fate(self):
        return "completed" if self.completed else "terminated"

    def __repr__(self):
        return f"<OptionalOutcome {self.fate} at {self.ended_at:.0f}>"


def _publish_outcome(probes, strategy, outcome, od_abs):
    """Publish one part's fate on the bus (no-op when unobserved)."""
    if probes is None or not probes.active:
        return
    if outcome.completed:
        probes.publish(
            "termination.completed", strategy=strategy.name,
            duration=outcome.ended_at - outcome.started_at,
        )
    else:
        probes.publish(
            "termination.terminated", strategy=strategy.name,
            duration=outcome.ended_at - outcome.started_at,
            overrun=outcome.ended_at - od_abs,
        )


class TerminationStrategy:
    """Interface.  ``run`` is a generator; its return value (via
    StopIteration) is an :class:`OptionalOutcome`."""

    name = "abstract"
    #: Table I column: can the part be cut at any instant?
    any_time_termination = False
    #: Table I column: is the signal mask usable for the next job?
    restores_signal_mask = False

    def setup(self, timer):
        """One-time per-thread setup (generator); default installs
        nothing."""
        return
        yield  # pragma: no cover

    def run(self, body, timer, od_abs, probes=None):
        """Execute ``body`` (the user's optional generator) until it
        completes or the strategy terminates it at ``od_abs``.

        :param probes: optional :class:`repro.obs.bus.ProbeBus`; when
            active, the outcome is published as a ``termination.*``
            event.
        """
        raise NotImplementedError


class SigjmpTermination(TerminationStrategy):
    """Figure 7: one-shot optional-deadline timer + ``SIGALRM`` handler
    that ``siglongjmp``\\ s back to the ``sigsetjmp`` point, restoring the
    saved stack context *and signal mask*.

    ``SIGALRM`` is blocked everywhere except while the optional body
    runs.  ``timer_settime(..., 0)`` cannot recall a signal the kernel
    already queued — if the part completes in the same instant the
    timer fires (or delivery is delayed), a *stale* ``SIGALRM`` would
    otherwise land while the thread waits for its next job and unwind
    it outside any handler frame, killing the thread.  Keeping the
    signal blocked outside the part window parks stale deliveries as
    pending; the worst case is an immediate (harmless) termination at
    the start of the next part.
    """

    name = "sigsetjmp/siglongjmp"
    any_time_termination = True
    restores_signal_mask = True

    def setup(self, timer):
        yield Sigaction(SIGALRM, UnwindDisposition(restore_mask=True))
        yield SetSignalMask({SIGALRM})

    def run(self, body, timer, od_abs, probes=None):
        started_at = yield GetTime()
        try:
            # sigsetjmp(...) == 0 branch: arm the one-shot timer and run.
            yield TimerSettime(timer, od_abs)
            yield SetSignalMask(set())
            yield from body
            # Completed: stop the optional deadline timer and close the
            # delivery window before touching any shared protocol state.
            yield SetSignalMask({SIGALRM})
            yield TimerSettime(timer, None)
            ended_at = yield GetTime()
            outcome = OptionalOutcome(True, started_at, ended_at)
        except SignalUnwind:
            # siglongjmp landed: stack context and signal mask restored
            # (re-block first — a second in-flight delivery must not
            # unwind the post-part bookkeeping).
            yield SetSignalMask({SIGALRM})
            ended_at = yield GetTime()
            outcome = OptionalOutcome(False, started_at, ended_at)
        _publish_outcome(probes, self, outcome, od_abs)
        return outcome


class TryCatchTermination(TerminationStrategy):
    """C++ ``try``/``catch`` with the optional deadline timer.

    Terminates at any time, but the handler's ``throw`` does **not**
    restore the signal mask, so ``SIGALRM`` stays blocked: the *next*
    job's timer expiry is never delivered and that optional part runs to
    completion, overrunning its budget (Table I, empty second cell).
    """

    name = "try-catch"
    any_time_termination = True
    restores_signal_mask = False

    def setup(self, timer):
        yield Sigaction(SIGALRM, UnwindDisposition(restore_mask=False))

    def run(self, body, timer, od_abs, probes=None):
        started_at = yield GetTime()
        try:
            yield TimerSettime(timer, od_abs)
            yield from body
            yield TimerSettime(timer, None)
            ended_at = yield GetTime()
            outcome = OptionalOutcome(True, started_at, ended_at)
        except SignalUnwind:
            ended_at = yield GetTime()
            outcome = OptionalOutcome(False, started_at, ended_at)
        _publish_outcome(probes, self, outcome, od_abs)
        return outcome


class PeriodicCheckTermination(TerminationStrategy):
    """No timer: re-check the clock after every chunk the optional body
    yields.

    Cannot terminate *within* a chunk, so an overrunning part stops only
    at the next check point — the QoS/latency degradation Table I notes.
    The signal mask is untouched (no signal is involved).
    """

    name = "periodic-check"
    any_time_termination = False
    restores_signal_mask = True  # trivially: nothing is ever masked

    def run(self, body, timer, od_abs, probes=None):
        started_at = yield GetTime()
        completed = True
        try:
            request = next(body)
        except StopIteration:
            request = None
        while request is not None:
            result = yield request
            now = yield GetTime()
            if now >= od_abs:
                completed = False
                body.close()
                break
            try:
                request = body.send(result)
            except StopIteration:
                break
        ended_at = yield GetTime()
        outcome = OptionalOutcome(completed, started_at, ended_at)
        _publish_outcome(probes, self, outcome, od_abs)
        return outcome


#: Registry for harness/CLI use.
STRATEGIES = {
    strategy.name: strategy
    for strategy in (
        SigjmpTermination(),
        TryCatchTermination(),
        PeriodicCheckTermination(),
    )
}


def termination_table():
    """Table I as data: rows of (implementation, any-time, mask-ok)."""
    rows = []
    for name in ("sigsetjmp/siglongjmp", "periodic-check", "try-catch"):
        strategy = STRATEGIES[name]
        rows.append(
            (
                name,
                strategy.any_time_termination,
                strategy.restores_signal_mask,
            )
        )
    return rows
