"""The real-time process: mandatory thread + parallel optional threads.

Implements the Figure 6 protocol on the simulated kernel, syscall for
syscall:

* the mandatory thread ``sched_setscheduler``\\ s itself into SCHED_FIFO,
  spawns the parallel optional threads (which ``sched_setaffinity`` to
  their assigned CPUs and block in ``pthread_cond_wait``), and
  ``clock_nanosleep``\\ s until its release time;
* each job: mandatory part -> one ``pthread_cond_signal`` per optional
  part (never ``pthread_cond_broadcast`` — parts are woken individually
  so each can be completed, terminated, or discarded independently) ->
  wait for all parts to end -> wind-up part -> sleep until next release;
* each optional thread: wait for the wake-up signal, arm the one-shot
  optional-deadline timer, run the optional part until completion or
  termination (Figure 7), then ``endOptionalPart``: increment the shared
  done counter under the task-wide mutex and, if last, signal the
  mandatory thread.

If the mandatory part finishes at or after the optional deadline, the
optional parts are *discarded* — they never receive the wake-up signal
(Section IV-C) — and the wind-up part runs immediately.

The per-job :class:`JobProbe` records every timestamp the paper's
Figure 9 probes measure: Δm, Δb, Δs, Δe fall out as properties.

The same measurement points double as live probe sites: when the
kernel's :class:`~repro.obs.bus.ProbeBus` has subscribers, the protocol
publishes ``rtseed.*`` events (release, mandatory begin/end, signalling
done, optional begin/end, discard, wind-up begin/end, job done) so
metrics collectors and trace exporters see the middleware protocol
without touching its timing — every timestamp published is one the
protocol already paid a ``GetTime`` for.
"""

from repro.core.queues import nrtq_priority
from repro.core.task import TaskContext
from repro.core.termination import OptionalOutcome, SigjmpTermination
from repro.simkernel.errors import JobAbortError, SignalUnwind
from repro.simkernel.sync import CondVar, Mutex
from repro.simkernel.syscalls import (
    ClockNanosleep,
    CondSignal,
    CondWait,
    GetTime,
    MutexLock,
    MutexUnlock,
    SchedSetAffinity,
    SchedSetScheduler,
    Spawn,
)
from repro.simkernel.thread import KernelThread, SchedPolicy
from repro.simkernel.time_units import NSEC_PER_USEC
from repro.simkernel.timers import KTimer


class JobProbe:
    """Timestamps of one job, placed exactly where Figure 9 measures.

    All times are absolute simulated nanoseconds.
    """

    def __init__(self, job_index, release, od_abs, deadline_abs,
                 n_parallel):
        self.job_index = job_index
        self.release = release
        self.od_abs = od_abs
        self.deadline_abs = deadline_abs
        self.mandatory_start = None
        self.mandatory_end = None
        self.signal_end = None
        self.mandatory_blocked = None
        self.optional_start = [None] * n_parallel
        self.optional_end = [None] * n_parallel
        self.optional_fate = ["discarded"] * n_parallel
        self.windup_start = None
        self.windup_end = None
        self.results = {}
        #: True when the job was aborted in a controlled way (the
        #: mandatory part raised :class:`JobAbortError`); it counts as a
        #: deadline miss but never ran its optional or wind-up parts.
        self.aborted = False

    # -- the four overheads (Section V-B), in nanoseconds -------------------

    @property
    def delta_m(self):
        """Δm: release time -> beginning of the mandatory part."""
        if self.mandatory_start is None:
            return None
        return self.mandatory_start - self.release

    @property
    def delta_b(self):
        """Δb: cost of signalling all parallel optional threads."""
        if self.signal_end is None or self.mandatory_end is None:
            return None
        return self.signal_end - self.mandatory_end

    @property
    def delta_s(self):
        """Δs: mandatory thread blocking -> first optional thread running
        (on the mandatory thread's CPU)."""
        if self.mandatory_blocked is None or self.optional_start[0] is None:
            return None
        return self.optional_start[0] - self.mandatory_blocked

    @property
    def delta_e(self):
        """Δe: optional deadline -> beginning of the wind-up part."""
        if self.windup_start is None or self.od_abs is None:
            return None
        return self.windup_start - self.od_abs

    def delta_us(self, which):
        """One of 'm', 'b', 's', 'e' in microseconds (or ``None``)."""
        value = getattr(self, f"delta_{which}")
        return None if value is None else value / NSEC_PER_USEC

    @property
    def deadline_met(self):
        return self.windup_end is not None and \
            self.windup_end <= self.deadline_abs + 1e-3

    @property
    def optional_time_executed(self):
        """Total optional execution time across parts (QoS)."""
        total = 0.0
        for start, end in zip(self.optional_start, self.optional_end):
            if start is not None and end is not None:
                total += end - start
        return total

    def __repr__(self):
        return (
            f"<JobProbe #{self.job_index} rel={self.release:.0f} "
            f"met={self.deadline_met}>"
        )


class RealTimeProcess:
    """One parallel-extended imprecise task as a real-time process.

    :param kernel: the simulated kernel to run on.
    :param task: a :class:`repro.core.task.Task`.
    :param priority: SCHED_FIFO priority of the mandatory thread (RTQ
        band, [50, 98], or 99 for the HPQ).
    :param cpu: CPU of the mandatory thread (mandatory and wind-up parts
        never migrate).
    :param optional_cpus: CPU per parallel optional part (from an
        assignment policy).  ``optional_cpus[0]`` should be ``cpu`` —
        the first optional part runs on the mandatory thread's CPU.
    :param optional_deadline: *relative* optional deadline OD.
    :param n_jobs: number of jobs to execute.
    :param strategy: a termination strategy (default Figure 7's
        sigsetjmp/siglongjmp).
    :param start_time: absolute first release (defaults to one period,
        leaving the init phase of Figure 6 room to finish).
    :param watchdog: optional
        :class:`~repro.core.resilience.OverrunWatchdog` armed per
        optional part; force-discards parts whose termination strategy
        fails to stop them.
    :param degrade: optional
        :class:`~repro.core.resilience.DegradedModeController`; while it
        reports degraded mode, this process sheds its optional parts
        (jobs run mandatory + wind-up only) and feeds its miss counters.
    """

    def __init__(self, kernel, task, priority, cpu, optional_cpus,
                 optional_deadline, n_jobs, strategy=None, start_time=None,
                 watchdog=None, degrade=None):
        if len(optional_cpus) != task.n_parallel:
            raise ValueError(
                f"{task.name}: {len(optional_cpus)} optional CPUs for "
                f"np={task.n_parallel}"
            )
        if not 0 < optional_deadline <= task.deadline:
            raise ValueError(
                f"{task.name}: optional deadline {optional_deadline} "
                f"outside (0, D]"
            )
        if n_jobs < 1:
            raise ValueError("need at least one job")
        self.kernel = kernel
        self.task = task
        self.priority = priority
        self.cpu = cpu
        self.optional_cpus = list(optional_cpus)
        self.optional_deadline = float(optional_deadline)
        self.n_jobs = n_jobs
        self.strategy = strategy or SigjmpTermination()
        self.start_time = (
            float(start_time) if start_time is not None else task.period
        )
        self.watchdog = watchdog
        self.degrade = degrade

        n_parallel = task.n_parallel
        self.probes = []
        self._active = True
        # one cond/mutex pair per optional thread (Figure 7 indexes the
        # task's condition arrays by CPU; per-part is the same shape)
        self._opt_mutex = [Mutex(f"{task.name}-opt-mutex-{k}")
                           for k in range(n_parallel)]
        self._opt_cond = [CondVar(f"{task.name}-opt-cond-{k}")
                          for k in range(n_parallel)]
        self._opt_pending = [None] * n_parallel
        # the task-wide completion lock behind endOptionalPart()
        self._done_mutex = Mutex(f"{task.name}-done-mutex")
        self._mand_cond = CondVar(f"{task.name}-mand-cond")
        self._done_count = 0
        self.mandatory_thread = None
        self.optional_threads = []

    # ------------------------------------------------------------------

    def spawn(self):
        """Create and start the mandatory thread (which spawns the
        optional threads, as in Figure 6)."""
        if self.mandatory_thread is not None:
            raise RuntimeError(f"{self.task.name}: already spawned")
        self.mandatory_thread = KernelThread(
            f"{self.task.name}-mandatory",
            self._mandatory_body,
            cpu=self.cpu,
            priority=self.priority,
            policy=SchedPolicy.FIFO,
        )
        self.kernel.spawn(self.mandatory_thread)
        return self

    @property
    def optional_priority(self):
        if self.priority == 99:
            # HPQ task: optional parts still live in the NRTQ band.
            return nrtq_priority(98)
        return nrtq_priority(self.priority)

    # -- thread bodies --------------------------------------------------

    def _mandatory_body(self, thread):
        task = self.task
        bus = self.kernel.probes
        yield SchedSetScheduler(SchedPolicy.FIFO, self.priority)
        yield SchedSetAffinity(self.cpu)
        for part_index in range(task.n_parallel):
            optional_thread = KernelThread(
                f"{task.name}-optional-{part_index}",
                self._make_optional_body(part_index),
                cpu=self.cpu,  # created locally; migrates itself (Fig. 6)
                priority=self.optional_priority,
                policy=SchedPolicy.FIFO,
            )
            self.optional_threads.append(optional_thread)
            yield Spawn(optional_thread)

        for job_index in range(self.n_jobs):
            release = self.start_time + job_index * task.period
            yield ClockNanosleep(release)
            probe = JobProbe(
                job_index,
                release,
                release + self.optional_deadline,
                release + task.deadline,
                task.n_parallel,
            )
            self.probes.append(probe)
            probe.mandatory_start = yield GetTime()
            if bus.active:
                bus.publish("rtseed.release", task=task.name,
                            job=job_index, tid=thread.tid,
                            release=release)
                bus.publish("rtseed.mandatory_begin", task=task.name,
                            job=job_index, tid=thread.tid,
                            delta_m=probe.delta_m)

            ctx = TaskContext(task, job_index, release,
                              probe.od_abs, probe.deadline_abs)
            try:
                yield from task.exec_mandatory(ctx)
            except JobAbortError as error:
                # controlled per-job failure (e.g. the retry-with-budget
                # fetch ran out of slack): discard the job, keep the
                # process alive for the next release.
                probe.aborted = True
                now = yield GetTime()
                if bus.active:
                    bus.publish("rtseed.job_abort", task=task.name,
                                job=job_index, tid=thread.tid,
                                reason=error.reason)
                if self.degrade is not None:
                    self.degrade.record_job(task.name, False, now)
                continue
            probe.mandatory_end = yield GetTime()
            if bus.active:
                bus.publish(
                    "rtseed.mandatory_end", task=task.name,
                    job=job_index, tid=thread.tid,
                    duration=probe.mandatory_end - probe.mandatory_start,
                )

            shed = self.degrade is not None and self.degrade.should_shed()
            if probe.mandatory_end < probe.od_abs and shed:
                # degraded mode: time remained, but system-wide pressure
                # sheds the optional parts — mandatory + wind-up only.
                self.degrade.note_shed()
                if bus.active:
                    bus.publish("degrade.shed", task=task.name,
                                job=job_index, tid=thread.tid,
                                n_parts=task.n_parallel)
            if probe.mandatory_end < probe.od_abs and not shed:
                # wake each optional part individually (never broadcast)
                token = (job_index, ctx, probe.od_abs)
                for part_index in range(task.n_parallel):
                    yield MutexLock(self._opt_mutex[part_index])
                    self._opt_pending[part_index] = token
                    yield CondSignal(self._opt_cond[part_index])
                    yield MutexUnlock(self._opt_mutex[part_index])
                    if self.watchdog is not None:
                        self.watchdog.arm(self.kernel, self, job_index,
                                          part_index, probe.od_abs)
                probe.signal_end = yield GetTime()
                if bus.active:
                    bus.publish("rtseed.signals_done", task=task.name,
                                job=job_index, tid=thread.tid,
                                delta_b=probe.delta_b)

                probe.mandatory_blocked = yield GetTime()
                yield MutexLock(self._done_mutex)
                while self._done_count < task.n_parallel:
                    yield CondWait(self._mand_cond, self._done_mutex)
                self._done_count = 0
                yield MutexUnlock(self._done_mutex)
            elif not shed:
                # no time for optional parts — they are discarded (the
                # wake-up signal is never sent) and the wind-up runs now.
                if bus.active:
                    bus.publish("rtseed.discard", task=task.name,
                                job=job_index, tid=thread.tid,
                                n_parts=task.n_parallel)

            probe.windup_start = yield GetTime()
            if bus.active:
                bus.publish("rtseed.windup_begin", task=task.name,
                            job=job_index, tid=thread.tid,
                            delta_e=probe.delta_e)
            yield from task.exec_windup(ctx)
            probe.windup_end = yield GetTime()
            probe.results = ctx.collect()
            if bus.active:
                bus.publish(
                    "rtseed.windup_end", task=task.name,
                    job=job_index, tid=thread.tid,
                    duration=probe.windup_end - probe.windup_start,
                )
                bus.publish(
                    "rtseed.job_done", task=task.name,
                    job=job_index, tid=thread.tid,
                    response=probe.windup_end - release,
                    tardiness=max(0.0, probe.windup_end -
                                  probe.deadline_abs),
                    met=probe.deadline_met,
                    qos=probe.optional_time_executed,
                    delta_m=probe.delta_m, delta_b=probe.delta_b,
                    delta_s=probe.delta_s, delta_e=probe.delta_e,
                )
            if self.degrade is not None:
                self.degrade.record_job(task.name, probe.deadline_met,
                                        probe.windup_end)

        # shutdown: release the optional threads from their wait loops
        self._active = False
        for part_index in range(task.n_parallel):
            yield MutexLock(self._opt_mutex[part_index])
            yield CondSignal(self._opt_cond[part_index])
            yield MutexUnlock(self._opt_mutex[part_index])

    def _make_optional_body(self, part_index):
        def body(thread):
            task = self.task
            bus = self.kernel.probes
            yield SchedSetScheduler(SchedPolicy.FIFO, self.optional_priority)
            yield SchedSetAffinity(self.optional_cpus[part_index])
            timer = KTimer(thread, name=f"{task.name}-odt-{part_index}")
            yield from self.strategy.setup(timer)

            while True:
                yield MutexLock(self._opt_mutex[part_index])
                while self._opt_pending[part_index] is None and self._active:
                    yield CondWait(self._opt_cond[part_index],
                                   self._opt_mutex[part_index])
                token = self._opt_pending[part_index]
                self._opt_pending[part_index] = None
                yield MutexUnlock(self._opt_mutex[part_index])
                if token is None:
                    break  # shutdown
                job_index, ctx, od_abs = token

                probe = self.probes[job_index]
                probe.optional_start[part_index] = yield GetTime()
                if bus.active:
                    bus.publish("rtseed.optional_begin", task=task.name,
                                part=part_index, job=job_index,
                                tid=thread.tid)
                body_gen = task.exec_optional(ctx, part_index)
                try:
                    outcome = yield from self.strategy.run(
                        body_gen, timer, od_abs, probes=bus)
                except SignalUnwind:
                    # a stale (delayed/duplicated) timer signal escaped
                    # the strategy's handler frame; count the part as
                    # terminated rather than killing the thread.
                    now = yield GetTime()
                    outcome = OptionalOutcome(
                        False, probe.optional_start[part_index], now)
                probe.optional_end[part_index] = outcome.ended_at
                probe.optional_fate[part_index] = outcome.fate
                if bus.active:
                    bus.publish(
                        "rtseed.optional_end", task=task.name,
                        part=part_index, job=job_index, tid=thread.tid,
                        fate=outcome.fate,
                        duration=outcome.ended_at - outcome.started_at,
                    )

                # endOptionalPart(): last part wakes the mandatory thread
                yield MutexLock(self._done_mutex)
                self._done_count += 1
                if self._done_count == task.n_parallel:
                    yield CondSignal(self._mand_cond)
                yield MutexUnlock(self._done_mutex)

        return body

    # -- results ----------------------------------------------------------

    def deltas_us(self, which):
        """All measured values of one overhead, in microseconds."""
        values = [p.delta_us(which) for p in self.probes]
        return [v for v in values if v is not None]

    @property
    def deadline_misses(self):
        return [p for p in self.probes if not p.deadline_met]

    @property
    def total_optional_time(self):
        return sum(p.optional_time_executed for p in self.probes)
