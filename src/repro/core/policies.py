"""Assignment policies for parallel optional parts (Section V-A, Figure 8).

Three policies place ``np`` parallel optional parts onto hardware
threads.  All three walk cores in id order and differ in how many
hardware threads per core they fill before moving on:

* **One by One** — one hardware thread per core per sweep; additional
  sweeps fill the next hardware thread of each core.
* **Two by Two** — two hardware threads per core per sweep.
* **All by All** — all hardware threads of a core (four on the Xeon Phi)
  before touching the next core.

The first part always lands on CPU 0 — "the first parallel optional
thread is executed on the processor that executes the mandatory thread"
(Section IV-C) — which every policy satisfies naturally because core 0 /
hardware-thread 0 is the first slot filled.
"""


class AssignmentPolicy:
    """Base class: subclasses define ``threads_per_sweep``."""

    name = "abstract"
    threads_per_sweep = None

    def assign(self, topology, n_parts):
        """CPU ids for parts ``0 .. n_parts-1``.

        :raises ValueError: if ``n_parts`` exceeds the machine size.
        """
        if n_parts < 1:
            raise ValueError("need at least one optional part")
        if n_parts > topology.n_cpus:
            raise ValueError(
                f"{n_parts} parts exceed {topology.n_cpus} hardware threads"
            )
        width = min(self.threads_per_sweep, topology.threads_per_core)
        cpus = []
        sweep_base = 0
        while len(cpus) < n_parts:
            for core in range(topology.n_cores):
                for offset in range(width):
                    hw_index = sweep_base + offset
                    if hw_index >= topology.threads_per_core:
                        continue
                    cpus.append(topology.cpu_of(core, hw_index))
                    if len(cpus) == n_parts:
                        return cpus
            sweep_base += width
            if sweep_base >= topology.threads_per_core:
                break
        return cpus

    def occupancy(self, topology, n_parts):
        """Parts per core, e.g. Figure 8's shading: core id -> count."""
        counts = {}
        for cpu in self.assign(topology, n_parts):
            core_id = topology.core_of(cpu).core_id
            counts[core_id] = counts.get(core_id, 0) + 1
        return counts

    def __repr__(self):
        return f"<{type(self).__name__}>"


class OneByOne(AssignmentPolicy):
    """Figure 8(a): spread one hardware thread per core per sweep."""

    name = "one_by_one"
    threads_per_sweep = 1


class TwoByTwo(AssignmentPolicy):
    """Figure 8(b): two hardware threads per core per sweep."""

    name = "two_by_two"
    threads_per_sweep = 2


class AllByAll(AssignmentPolicy):
    """Figure 8(c): fill each core completely before the next.

    ``threads_per_sweep`` is clamped to the machine's SMT width, so one
    sweep covers every hardware thread of a core (four by four on the
    Xeon Phi 3120A).
    """

    name = "all_by_all"
    threads_per_sweep = 1_000_000  # clamped to threads_per_core


#: Name -> policy instance registry (the bench harness iterates this).
POLICIES = {
    policy.name: policy
    for policy in (OneByOne(), TwoByTwo(), AllByAll())
}


def get_policy(name):
    """Look up a policy by name with a helpful error."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
