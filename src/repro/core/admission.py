"""Admission control: accept tasks only while guarantees hold.

RT-Seed's second stated goal is to become "the de facto standard for
real-time middleware supporting imprecise computation"; a production
middleware needs online admission control.  :class:`AdmissionController`
wraps the offline analysis (per-CPU RMWP feasibility, valid optional
deadlines, priority-band capacity) so callers can test-and-add tasks
incrementally and get a precise reason on rejection.
"""

from repro.core.queues import RTQ_RANGE
from repro.model.optional_deadline import (
    OptionalDeadlineError,
    optional_deadlines_rmwp,
)
from repro.sched.analysis import rta_schedulable


class AdmissionDecision:
    """Outcome of an admission test."""

    __slots__ = ("accepted", "reason", "optional_deadlines")

    def __init__(self, accepted, reason, optional_deadlines=None):
        self.accepted = accepted
        self.reason = reason
        self.optional_deadlines = optional_deadlines or {}

    def __bool__(self):
        return self.accepted

    def __repr__(self):
        verdict = "ACCEPT" if self.accepted else "REJECT"
        return f"<AdmissionDecision {verdict}: {self.reason}>"


class AdmissionController:
    """Per-CPU admission control for RMWP task sets.

    :param n_cpus: processors available for mandatory/wind-up parts.
    """

    #: RTQ band capacity: one priority level per task on a CPU.
    _BAND_CAPACITY = RTQ_RANGE[1] - RTQ_RANGE[0] + 1

    def __init__(self, n_cpus):
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.n_cpus = n_cpus
        self._admitted = {cpu: [] for cpu in range(n_cpus)}

    def admitted(self, cpu=None):
        """Models admitted on ``cpu`` (or all, flattened)."""
        if cpu is not None:
            return list(self._admitted[cpu])
        return [m for models in self._admitted.values() for m in models]

    def utilization(self, cpu):
        return sum(m.utilization for m in self._admitted[cpu])

    def test(self, model, cpu):
        """Would admitting ``model`` on ``cpu`` preserve all guarantees?

        Checks, in order: duplicate name, priority-band capacity, RM
        feasibility of the ``m+w`` workload, and valid optional
        deadlines for *every* task on the CPU (an arrival can shrink an
        existing task's OD into infeasibility).
        """
        if not 0 <= cpu < self.n_cpus:
            raise ValueError(f"CPU {cpu} out of range")
        names = {m.name for m in self.admitted()}
        if model.name in names:
            return AdmissionDecision(
                False, f"duplicate task name {model.name!r}"
            )
        candidate = self._admitted[cpu] + [model]
        if len(candidate) > self._BAND_CAPACITY:
            return AdmissionDecision(
                False,
                f"RTQ band exhausted on CPU {cpu} "
                f"({self._BAND_CAPACITY} levels)",
            )
        if not rta_schedulable(candidate):
            return AdmissionDecision(
                False,
                f"m+w workload unschedulable on CPU {cpu} "
                f"(U would be {sum(m.utilization for m in candidate):.3f})",
            )
        try:
            deadlines = optional_deadlines_rmwp(candidate)
        except OptionalDeadlineError as error:
            return AdmissionDecision(
                False, f"optional deadline infeasible: {error}"
            )
        return AdmissionDecision(True, "feasible", deadlines)

    def admit(self, model, cpu):
        """Test and, on success, record the task.

        :returns: the :class:`AdmissionDecision` (truthy iff admitted).
        """
        decision = self.test(model, cpu)
        if decision:
            self._admitted[cpu].append(model)
        return decision

    def admit_anywhere(self, model, heuristic="first_fit"):
        """Admit on the first/best CPU that accepts the task.

        :param heuristic: ``first_fit`` or ``worst_fit`` (lowest
            utilization first).
        :returns: (cpu, decision); ``cpu`` is None when rejected
            everywhere (the decision then carries the last reason).
        """
        if heuristic == "first_fit":
            order = range(self.n_cpus)
        elif heuristic == "worst_fit":
            order = sorted(range(self.n_cpus), key=self.utilization)
        else:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        decision = AdmissionDecision(False, "no CPUs")
        for cpu in order:
            decision = self.admit(model, cpu)
            if decision:
                return cpu, decision
        return None, decision

    def release(self, name):
        """Remove an admitted task (it finished its jobs)."""
        for models in self._admitted.values():
            for model in models:
                if model.name == name:
                    models.remove(model)
                    return True
        return False
