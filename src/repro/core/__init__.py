"""RT-Seed: the real-time middleware (the paper's contribution).

Public API:

* :class:`~repro.core.task.Task` / :class:`~repro.core.task.WorkloadTask`
  — the parallel-extended imprecise task with ``exec_mandatory`` /
  ``exec_optional`` / ``exec_windup`` (Section IV-C).
* :class:`~repro.core.middleware.RTSeed` — the middleware runner.
* :mod:`repro.core.policies` — one-by-one / two-by-two / all-by-all
  optional-part placement (Figure 8).
* :mod:`repro.core.termination` — sigsetjmp / periodic-check / try-catch
  termination strategies (Section IV-D, Table I).
* :mod:`repro.core.queues` — the HPQ/RTQ/NRTQ/SQ priority-band mapping
  (Figures 4 and 5).
* :mod:`repro.core.resilience` — graceful-degradation machinery
  (retry-within-budget, overrun watchdog, system-wide degraded mode)
  hardening the protocol against injected faults (:mod:`repro.faults`).
"""

from repro.core.middleware import RTSeed, RTSeedResult, TaskResult
from repro.core.policies import (
    POLICIES,
    AllByAll,
    AssignmentPolicy,
    OneByOne,
    TwoByTwo,
    get_policy,
)
from repro.core.practical import (
    PhaseProbe,
    PracticalRealTimeProcess,
    PracticalTask,
    PracticalWorkloadTask,
)
from repro.core.process import JobProbe, RealTimeProcess
from repro.core.resilience import (
    DegradedModeController,
    OverrunWatchdog,
    RetryPolicy,
)
from repro.core.queues import (
    HPQ_PRIORITY,
    NRTQ_RANGE,
    PRIORITY_GAP,
    RTQ_RANGE,
    PriorityBandError,
    ReadyQueueView,
    classify_priority,
    nrtq_priority,
    rtq_priority,
)
from repro.core.task import Task, TaskContext, WorkloadTask
from repro.core.termination import (
    STRATEGIES,
    OptionalOutcome,
    PeriodicCheckTermination,
    SigjmpTermination,
    TerminationStrategy,
    TryCatchTermination,
    termination_table,
)

__all__ = [
    "RTSeed",
    "RTSeedResult",
    "TaskResult",
    "POLICIES",
    "AllByAll",
    "AssignmentPolicy",
    "OneByOne",
    "TwoByTwo",
    "get_policy",
    "JobProbe",
    "RealTimeProcess",
    "DegradedModeController",
    "OverrunWatchdog",
    "RetryPolicy",
    "PhaseProbe",
    "PracticalRealTimeProcess",
    "PracticalTask",
    "PracticalWorkloadTask",
    "HPQ_PRIORITY",
    "NRTQ_RANGE",
    "PRIORITY_GAP",
    "RTQ_RANGE",
    "PriorityBandError",
    "ReadyQueueView",
    "classify_priority",
    "nrtq_priority",
    "rtq_priority",
    "Task",
    "TaskContext",
    "WorkloadTask",
    "STRATEGIES",
    "OptionalOutcome",
    "PeriodicCheckTermination",
    "SigjmpTermination",
    "TerminationStrategy",
    "TryCatchTermination",
    "termination_table",
]
