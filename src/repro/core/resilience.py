"""Graceful-degradation machinery for the middleware.

RT-Seed's value proposition is surviving overload: optional parts are
terminated at the optional deadline so mandatory parts never miss.  The
mechanisms here harden the protocol against the failure modes the
fault-injection subsystem (:mod:`repro.faults`) manufactures:

* :class:`RetryPolicy` — bounded retry-with-backoff *inside the
  remaining deadline slack* for a failable mandatory step (the trading
  task's market-data fetch); when no further attempt fits, the job is
  aborted in a controlled way (:class:`~repro.simkernel.errors.\
JobAbortError`) instead of dragging the whole process past its
  deadline.
* :class:`OverrunWatchdog` — detects a termination strategy failing to
  stop an optional part (Table I's C++ ``try``/``catch`` row leaves
  ``SIGALRM`` masked, and a dropped signal loses the termination
  entirely) and force-discards the part via
  :meth:`~repro.simkernel.kernel.Kernel.force_unwind`, repairing the
  wedged signal mask.
* :class:`DegradedModeController` — system-wide admission-control
  degraded mode: when any task accumulates consecutive deadline misses,
  *all* optional parts are shed (jobs run mandatory + wind-up only,
  the imprecise-computation minimum) until sustained on-time completion
  clears the pressure.

All three publish ``degrade.*`` probe events so traces and the
resilience report attribute recoveries to causes.
"""

from functools import partial

from repro.simkernel.errors import JobAbortError


class RetryPolicy:
    """Bounded retry-with-backoff within a deadline budget.

    The policy is pure arithmetic — the protocol layer owns the clock
    and the syscalls.  :meth:`next_backoff` yields the sleep before
    attempt ``n+1``; :meth:`abort_reason` decides whether another
    attempt (backoff + worst-case duration + reserve) still fits before
    ``budget_end``.

    :param max_attempts: total attempts allowed (first try included).
    :param backoff: sleep before the first retry, nanoseconds.
    :param backoff_factor: multiplier applied per further retry.
    :param reserve: slack to leave untouched before the budget end
        (time the rest of the job still needs), nanoseconds.
    """

    def __init__(self, max_attempts=3, backoff=1_000_000.0,
                 backoff_factor=2.0, reserve=0.0):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if backoff < 0 or reserve < 0:
            raise ValueError("backoff and reserve must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        self.max_attempts = max_attempts
        self.backoff = float(backoff)
        self.backoff_factor = float(backoff_factor)
        self.reserve = float(reserve)

    def next_backoff(self, attempt):
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)

    def abort_reason(self, attempt, now, budget_end, worst_case):
        """Why attempt ``attempt+1`` must not run, or ``None`` if it may.

        :param attempt: attempts already consumed.
        :param now: current time (ns).
        :param budget_end: absolute deadline for the step's completion.
        :param worst_case: pessimistic duration of one more attempt.
        """
        if attempt >= self.max_attempts:
            return f"retry budget exhausted ({self.max_attempts} attempts)"
        earliest_done = now + self.next_backoff(attempt) + worst_case
        if earliest_done > budget_end - self.reserve:
            return (
                f"no slack for retry {attempt + 1}: would finish at "
                f"{earliest_done:.0f} > budget {budget_end - self.reserve:.0f}"
            )
        return None


class OverrunWatchdog:
    """Force-discards optional parts that outlive their termination.

    Armed by the protocol per (job, part) at signal time: if the part
    has not ended ``grace`` ns after its optional deadline, the strategy
    that was supposed to stop it has failed (wedged signal mask, dropped
    SIGALRM, drifted timer) and the watchdog delivers a forced unwind.

    :param grace: how far past the optional deadline a part may run
        before the watchdog intervenes, nanoseconds.
    """

    def __init__(self, grace=5_000_000.0):
        if grace < 0:
            raise ValueError("grace must be >= 0")
        self.grace = float(grace)
        #: (job_index, part_index, fire time) per forced discard.
        self.fired = []

    def arm(self, kernel, process, job_index, part_index, od_abs):
        """Schedule the overrun check for one part of one job."""
        kernel.engine.schedule_at(
            od_abs + self.grace,
            partial(self._check, kernel, process, job_index, part_index,
                    od_abs),
        )

    def _check(self, kernel, process, job_index, part_index, od_abs):
        probe = process.probes[job_index]
        if probe.optional_end[part_index] is not None:
            return  # part ended in time; nothing to do
        thread = process.optional_threads[part_index]
        if not thread.alive:
            return
        now = kernel.engine.now
        self.fired.append((job_index, part_index, now))
        bus = kernel.probes
        if bus.active:
            bus.publish("degrade.watchdog_fire", task=process.task.name,
                        job=job_index, part=part_index,
                        overrun=now - od_abs)
        kernel.force_unwind(thread)


class DegradedModeController:
    """System-wide optional-part shedding under sustained overload.

    Processes report every job outcome through :meth:`record_job` and
    consult :meth:`should_shed` before waking their optional parts.
    The controller enters degraded mode once any single task misses
    ``enter_after`` consecutive deadlines, and exits after
    ``exit_after`` consecutive met deadlines (across all tasks) — shed
    jobs finish early, so pressure clears quickly and recovery latency
    is measurable.

    :param enter_after: consecutive misses (per task) that trigger
        degraded mode.
    :param exit_after: consecutive met jobs (system-wide) that clear it.
    :param probes: optional :class:`~repro.obs.bus.ProbeBus` for
        ``degrade.enter`` / ``degrade.exit`` events.
    """

    def __init__(self, enter_after=3, exit_after=2, probes=None):
        if enter_after < 1 or exit_after < 1:
            raise ValueError("thresholds must be >= 1")
        self.enter_after = enter_after
        self.exit_after = exit_after
        self.probes = probes
        self.degraded = False
        #: completed episodes: (enter time, exit time) tuples; an episode
        #: still open at shutdown has exit time ``None``.
        self.episodes = []
        #: jobs whose optional parts were shed while degraded.
        self.shed_jobs = 0
        self._consecutive_miss = {}
        self._consecutive_met = 0
        self._entered_at = None

    def should_shed(self):
        """True while optional parts must be shed system-wide."""
        return self.degraded

    def note_shed(self):
        """One job's optional parts were shed (bookkeeping)."""
        self.shed_jobs += 1

    def record_job(self, task_name, met, now):
        """Feed one job outcome into the miss counters."""
        if met:
            self._consecutive_miss[task_name] = 0
            self._consecutive_met += 1
        else:
            count = self._consecutive_miss.get(task_name, 0) + 1
            self._consecutive_miss[task_name] = count
            self._consecutive_met = 0
            if not self.degraded and count >= self.enter_after:
                self.degraded = True
                self._entered_at = now
                if self.probes is not None and self.probes.active:
                    self.probes.publish("degrade.enter", task=task_name,
                                        consecutive_misses=count)
        if self.degraded and self._consecutive_met >= self.exit_after:
            self.degraded = False
            self.episodes.append((self._entered_at, now))
            if self.probes is not None and self.probes.active:
                self.probes.publish(
                    "degrade.exit",
                    recovery_latency=now - self._entered_at,
                )
            self._entered_at = None
            # fresh baseline: without this, miss counts accumulated
            # before/during the episode survive the exit, and a single
            # new miss re-enters degraded mode instead of requiring
            # ``enter_after`` fresh consecutive misses
            self._consecutive_miss = {}
            self._consecutive_met = 0

    def close(self, now):
        """Record a still-open episode at end of run."""
        if self.degraded and self._entered_at is not None:
            self.episodes.append((self._entered_at, None))
            self._entered_at = None

    @property
    def recovery_latencies(self):
        """Recovery latency (ns) of every *completed* episode."""
        return [exit_t - enter_t for enter_t, exit_t in self.episodes
                if exit_t is not None]
