"""The ``rtseed-snapshot/1`` document: build, write, load, verify.

A snapshot is one JSON document with five parts:

``schema``
    :data:`SNAPSHOT_SCHEMA` — refused on mismatch.
``program``
    The *reconstructible program spec*: everything needed to rebuild
    the exact run from scratch (kind, seed, backend, workload
    parameters).  See :mod:`repro.snapshot.programs`.
``barrier``
    Where in the run the snapshot was taken — for kernel programs the
    engine's ``events_processed`` count and simulated clock; for
    campaign checkpoints the completed-scenario count.
``state``
    The complete captured simulation state
    (:func:`repro.snapshot.state.capture_state`) — or, for campaign
    checkpoints, the completed per-scenario results.
``digest``
    SHA-256 over the canonical JSON of ``state``
    (:func:`repro.snapshot.state.state_digest`).

Integrity model: :func:`load_snapshot` re-computes the digest over the
loaded ``state`` and refuses a tampered or truncated document;
:func:`repro.snapshot.resume.resume_run` additionally re-executes the
program to the barrier and refuses to continue unless the *live* state
digests to the same value (:class:`SnapshotMismatchError`) — the
restore is attested against the capture, bit for bit.
"""

import json
import os

from repro.snapshot.state import capture_state, state_digest

#: Snapshot document schema tag.
SNAPSHOT_SCHEMA = "rtseed-snapshot/1"


class SnapshotError(Exception):
    """Malformed, unreadable, or wrong-schema snapshot document."""


class SnapshotMismatchError(SnapshotError):
    """A resume refused: the re-executed state does not attest against
    the captured digest (wrong seed/backend/code, or a tampered
    document)."""


def build_snapshot(program, barrier, state, seed=None, backend=None):
    """Assemble a snapshot document (digest computed here)."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "seed": seed,
        "backend": backend,
        "program": program,
        "barrier": barrier,
        "state": state,
        "digest": state_digest(state),
    }


def snapshot_kernel(kernel, program, extras=None, seed=None,
                    backend=None):
    """Capture ``kernel`` right now into a snapshot document."""
    state = capture_state(kernel, extras=extras)
    barrier = {
        "events_processed": kernel.engine.events_processed,
        "now": kernel.engine.now,
    }
    return build_snapshot(program, barrier, state, seed=seed,
                          backend=backend)


def render_snapshot(document):
    """Deterministic byte form of a snapshot document."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_snapshot(path, document):
    """Write a snapshot document to ``path`` (atomic rename, so a
    crash mid-write never leaves a truncated snapshot); returns
    ``path``."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(render_snapshot(document))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def validate_snapshot(document):
    """Schema + integrity checks on an in-memory document.

    Raises :class:`SnapshotError` on a wrong schema or missing parts,
    and on a ``state`` whose digest does not match the recorded one
    (tampering / truncation).  Returns the document.
    """
    if not isinstance(document, dict):
        raise SnapshotError("snapshot document must be a JSON object")
    schema = document.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"unsupported snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    for key in ("program", "barrier", "state", "digest"):
        if key not in document:
            raise SnapshotError(f"snapshot document missing {key!r}")
    digest = state_digest(document["state"])
    if digest != document["digest"]:
        raise SnapshotError(
            f"snapshot digest mismatch: document says "
            f"{document['digest']}, state hashes to {digest} "
            f"(tampered or truncated)"
        )
    return document


def load_snapshot(path):
    """Load + validate a snapshot document from ``path``."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}")
    return validate_snapshot(document)


def inspect_snapshot(document):
    """One-screen JSON-ready summary of a snapshot document."""
    program = document["program"]
    barrier = document["barrier"]
    state = document["state"]
    summary = {
        "schema": document["schema"],
        "seed": document.get("seed"),
        "backend": document.get("backend"),
        "program": program,
        "barrier": barrier,
        "digest": document["digest"],
    }
    if "engine" in state:
        engine = state["engine"]
        summary["engine"] = {
            "layout": engine["layout"],
            "now": engine["now"],
            "events_processed": engine["events_processed"],
            "pending": engine["pending"],
            "heap_size": engine["heap_size"],
        }
        summary["threads"] = len(state.get("threads", []))
        summary["timers"] = len(state.get("timers", []))
    if "completed" in state:
        summary["completed"] = sorted(state["completed"])
    return summary
