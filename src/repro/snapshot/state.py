"""Complete simulation-state capture for ``rtseed-snapshot/1``.

:func:`capture_state` walks a live :class:`~repro.simkernel.kernel.
Kernel` and produces one JSON-ready dict covering every piece of state
the ISSUE-9 snapshot format names: the engine event queue (both the
reference tuple layout and the fast record layout), the per-CPU ready
queues, kernel threads with their signal masks and pending signals,
armed timers, core speeds, the cost model's noise-stream RNG state
(scalar draws and the :class:`~repro.hardware.noise.
BatchedLognormalStream` cursor), plus whatever *extras* the owning
program contributes (resilience controllers, trading feed/broker
state, the passive flight-recorder ring — see
:mod:`repro.snapshot.programs`).

Determinism contract
--------------------

Two captures of the *same simulation instant* — whether the run reached
it uninterrupted or via a restore's deterministic fast-forward — must
serialize to identical bytes under ``json.dumps(..., sort_keys=True)``.
That is what makes :func:`state_digest` usable as a restore
attestation.  The rules that keep the capture on-contract:

* nothing address- or identity-based ever enters the dict (no ``id()``,
  no default ``repr`` of objects, no process-global counters such as
  ``timer_id``);
* collections with unordered semantics (signal masks, armed timers)
  are sorted by stable keys;
* callbacks — arbitrary closures bound onto kernel objects — are
  rendered as *descriptors* (:func:`describe_callback`): the function's
  qualified name plus stable descriptions of its bound arguments.
  A descriptor cannot be called, but it is a deterministic fingerprint
  of the callback's identity, which is all attestation needs (restore
  re-executes the program; it never rehydrates callbacks from the
  document — see ``docs/SNAPSHOTS.md``).
"""

import functools
import hashlib
import json

from repro.engine.events import Engine, Event
from repro.engine.fastevents import FastEngine

#: fast-engine record state codes -> stable labels.
_FAST_STATE = {0: "pending", 1: "cancelled", 2: "done"}


def describe_value(value):
    """Stable, JSON-safe description of a callback argument."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    tid = getattr(value, "tid", None)
    name = getattr(value, "name", None)
    if tid is not None and isinstance(name, str):
        return f"thread:{name}"
    if isinstance(name, str):
        return f"{type(value).__name__}:{name}"
    return type(value).__name__


def describe_callback(callback):
    """Stable descriptor for a scheduled callback (never invokable)."""
    if isinstance(callback, functools.partial):
        inner = describe_callback(callback.func)
        bound = ",".join(describe_value(arg) for arg in callback.args)
        return f"partial({inner})[{bound}]"
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        return (f"{describe_value(bound_self)}"
                f".{callback.__func__.__qualname__}")
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    return type(callback).__name__


def _capture_heap(engine):
    """Canonical event-queue rows for either engine layout.

    Rows are ``[time, priority, seq, status, callback-descriptor]``
    sorted by ``(time, priority, seq)`` — the heap's partial order is
    an implementation detail, the sorted multiset is the state.
    Lazily-cancelled entries are included (status ``"cancelled"``):
    they are part of the physical state the deterministic replay must
    reproduce (compaction timing depends on them).
    """
    rows = []
    if isinstance(engine, FastEngine):
        for record in engine._heap:
            time, priority, seq, callback, state = record
            rows.append([time, priority, seq,
                         _FAST_STATE.get(state, str(state)),
                         describe_callback(callback)])
    elif isinstance(engine, Engine):
        for _time, _priority, _seq, event in engine._heap:
            rows.append([event.time, event.priority, event.seq,
                         "cancelled" if event.cancelled else "pending",
                         describe_callback(event.callback)])
    else:  # duck-typed third backend: require an Event-like heap
        for entry in engine._heap:
            event = entry[-1]
            if isinstance(event, Event):
                rows.append([event.time, event.priority, event.seq,
                             "cancelled" if event.cancelled
                             else "pending",
                             describe_callback(event.callback)])
            else:
                rows.append([entry[0], entry[1], entry[2], "pending",
                             describe_callback(entry[3])])
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows


def capture_engine(engine):
    """Engine section: clock, progress counters, the full event queue,
    and the telemetry counters (compaction history included — replay
    must reproduce those too)."""
    return {
        "layout": type(engine).__name__,
        "now": engine.now,
        "events_processed": engine.events_processed,
        "pending": engine.pending_count,
        "heap_size": engine.heap_size,
        "heap": _capture_heap(engine),
        "counters": engine.counters(),
    }


def _capture_level_queue(queue):
    levels = {}
    for prio in range(queue.min_prio, queue.max_prio + 1):
        names = [thread.name for thread in queue._levels[prio]]
        if names:
            levels[str(prio)] = names
    return {"kind": "levels", "levels": levels}


def capture_queues(kernel):
    """Per-CPU ready/other queue contents, by thread name in queue
    order (FIFO order within a level is scheduling state)."""
    cpus = []
    for cpu in range(len(kernel.runqueues)):
        cpus.append({
            "cpu": cpu,
            "ready": _capture_level_queue(kernel.runqueues[cpu]),
            "other": [thread.name
                      for thread in kernel.other_queues[cpu]],
        })
    return cpus


def capture_threads(kernel):
    """Every kernel thread, sorted by tid (spawn order — stable)."""
    threads = []
    for thread in sorted(kernel.threads, key=lambda t: t.tid):
        threads.append({
            "tid": thread.tid,
            "name": thread.name,
            "cpu": thread.cpu,
            "priority": thread.priority,
            "policy": getattr(thread.policy, "name", str(thread.policy)),
            "state": getattr(thread.state, "name", str(thread.state)),
            "blocked_on": describe_value(thread.blocked_on)
            if thread.blocked_on is not None else None,
            "signal_mask": sorted(thread.signal_mask),
            "pending_signals": list(thread.pending_signals),
            "signal_handlers": sorted(thread.signal_handlers),
            "cpu_time": thread.cpu_time,
        })
    return threads


def capture_timers(kernel):
    """Armed timers sorted by ``(expires_at, owner, signum)`` — never
    by the process-global ``timer_id`` (not reproducible)."""
    return sorted(
        (
            {
                "owner": timer.owner.name,
                "signum": timer.signum,
                "expires_at": timer.expires_at,
            }
            for timer in kernel.armed_timers
        ),
        key=lambda entry: (entry["expires_at"], entry["owner"],
                           entry["signum"]),
    )


def capture_cores(kernel):
    """Per-core speed (fault windows change these at run time)."""
    return [core.speed for core in kernel.topology.cores]


def _rng_state(rng):
    """A numpy Generator's bit-generator state, JSON-normalized."""

    def normalize(value):
        if isinstance(value, dict):
            return {key: normalize(val) for key, val in value.items()}
        if isinstance(value, (list, tuple)):
            return [normalize(item) for item in value]
        if hasattr(value, "item"):  # numpy scalar / 0-d array
            return value.item()
        if hasattr(value, "tolist"):
            return value.tolist()
        return value

    return normalize(rng.bit_generator.state)


def capture_cost_model(cost_model):
    """Noise-stream state: the RNG cursor is load-bearing (one draw per
    priced event), the batched stream adds its chunk cursor and the
    still-buffered draws."""
    if cost_model is None:
        return None
    rng = getattr(cost_model, "_rng", None)
    if rng is None:
        return {"kind": type(cost_model).__name__}
    state = {
        "kind": type(cost_model).__name__,
        "noise_mode": getattr(cost_model, "noise_mode", "scalar"),
        "noise_sigma": getattr(cost_model, "noise_sigma", None),
        "rng": _rng_state(rng),
    }
    stream = getattr(cost_model, "_noise_stream", None)
    if stream is not None:
        buffered = stream._buf[stream._idx:] if stream._buf is not None \
            else []
        state["stream"] = {
            "chunk": stream._chunk,
            "index": stream._idx,
            "buffered": [float(value) for value in buffered],
        }
    return state


def capture_resilience(retry=None, watchdog=None, degrade=None):
    """Resilience-controller counters (an *extras* helper)."""
    state = {}
    if retry is not None:
        state["retry"] = {
            "max_attempts": retry.max_attempts,
            "backoff": retry.backoff,
            "backoff_factor": retry.backoff_factor,
            "reserve": retry.reserve,
        }
    if watchdog is not None:
        state["watchdog"] = {
            "grace": watchdog.grace,
            "fired": [list(entry) for entry in watchdog.fired],
        }
    if degrade is not None:
        state["degrade"] = {
            "enter_after": degrade.enter_after,
            "exit_after": degrade.exit_after,
            "degraded": degrade.degraded,
            "episodes": [list(episode)
                         for episode in degrade.episodes],
            "shed_jobs": degrade.shed_jobs,
            "consecutive_miss": dict(sorted(
                degrade._consecutive_miss.items()
            )),
            "consecutive_met": degrade._consecutive_met,
            "entered_at": degrade._entered_at,
        }
    return state


def capture_trading(task, broker):
    """Trading feed/broker progress (an *extras* helper)."""
    account = broker.account
    return {
        "decisions": len(task.decisions),
        "last_decision": None if not task.decisions else {
            "job": task.decisions[-1][0],
            "kind": task.decisions[-1][1].kind.name,
        },
        "broker_failures": len(task.broker_failures),
        "risk_vetoes": len(task.risk_vetoes),
        "account": {
            "balance": account.balance,
            "position": account.position,
            "average_price": account.average_price,
            "realized_pnl": account.realized_pnl,
        },
        "orders": len(broker.orders),
    }


def capture_flight(recorder):
    """The passive flight-recorder ring (an *extras* helper)."""
    if recorder is None:
        return None
    return {
        "capacity": recorder.capacity,
        "recorded": recorder.recorded,
        "dropped": recorder.dropped,
        "events": recorder.events(),
    }


def capture_state(kernel, extras=None):
    """The complete simulation state of ``kernel``, JSON-ready.

    :param extras: optional dict of additional sections the owning
        program contributes (``resilience``, ``trading``, ``flight``,
        ...); merged under their own keys.
    """
    state = {
        "engine": capture_engine(kernel.engine),
        "queues": capture_queues(kernel),
        "current": [None if thread is None else thread.name
                    for thread in kernel.current],
        "threads": capture_threads(kernel),
        "timers": capture_timers(kernel),
        "cores": capture_cores(kernel),
        "next_tid": kernel._next_tid,
        "cost_model": capture_cost_model(kernel.cost_model),
    }
    if extras:
        for key, value in extras.items():
            state[key] = value
    return state


def canonical_json(state):
    """The canonical byte form the digest is computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_digest(state):
    """SHA-256 over the canonical JSON of ``state`` — the attestation
    token a restore must reproduce before it may continue the run."""
    return hashlib.sha256(canonical_json(state).encode()).hexdigest()
