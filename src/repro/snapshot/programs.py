"""Reconstructible program specs: the ``program`` part of a snapshot.

A snapshot must be resumable *in a fresh process*, but engine events
hold arbitrary Python closures pre-bound onto kernel objects — they
cannot be deserialized from JSON.  The restore model is therefore
**deterministic re-execution with state attestation** (see
``docs/SNAPSHOTS.md``): the snapshot records a *program spec* — the
complete recipe to rebuild the run from scratch (kind, seed, backend,
workload parameters) — and the restore rebuilds it, fast-forwards the
engine to the barrier, and refuses to continue unless the live state
digests to the captured value.

Every program exposes the same four-step surface:

``start()``
    Build the workload and spawn everything (no events run yet).
``run_to_events(n)``
    Drive the engine to exactly ``n`` processed events.
``finish()``
    Drain to completion and return the program's deterministic JSON
    payload (the byte-identity object CI ``cmp``'s).
``extras()``
    Program-specific state sections merged into the capture
    (resilience controllers, trading feed/broker state, the flight
    ring).

Four program kinds cover the robustness surfaces: ``overheads`` (the
fig10-style evaluation workload), ``trade`` (the end-to-end trading
system), ``faults:<scenario>`` (a canned resilience scenario, fault
plan active), and ``check`` (a conformance scenario, for check-artifact
time-travel).
"""

import hashlib
import json

from repro.engine.backend import get_backend
from repro.snapshot.core import SnapshotError
from repro.snapshot.state import (
    capture_flight,
    capture_resilience,
    capture_trading,
)


class _StreamHash:
    """Probe subscriber that folds every event into a SHA-256.

    Subscribing it is what makes "the probe stream is byte-identical"
    a *checkable* payload property: the uninterrupted run and the
    resumed run both carry the hash of every ``(topic, time, payload)``
    triple they published.
    """

    def __init__(self):
        self._hash = hashlib.sha256()
        self.events = 0

    def __call__(self, topic, time, data):
        self.events += 1
        self._hash.update(json.dumps(
            [topic, time, sorted(data.items())],
            sort_keys=True, default=str,
        ).encode())

    def hexdigest(self):
        return self._hash.hexdigest()


class ProgramRun:
    """Base class: engine fast-forward + payload plumbing."""

    kind = "abstract"

    def __init__(self, spec):
        self.spec = dict(spec)
        self.spec["kind"] = self.kind
        backend = get_backend(self.spec.get("engine"))
        # pin the resolved backend into the spec so a resume in a
        # process with a different $RTSEED_ENGINE rebuilds identically
        self.spec["engine"] = backend.name
        self.backend = backend
        self.kernel = None
        self.stream = _StreamHash()

    @property
    def seed(self):
        return self.spec.get("seed", 0)

    def start(self):
        raise NotImplementedError

    def run_to_events(self, barrier):
        """Drive the engine to exactly ``barrier`` processed events."""
        engine = self.kernel.engine
        remaining = barrier - engine.events_processed
        if remaining < 0:
            raise SnapshotError(
                f"engine already past barrier: "
                f"{engine.events_processed} > {barrier}"
            )
        if remaining:
            engine.run(max_events=remaining)
        if engine.events_processed != barrier:
            raise SnapshotError(
                f"run drained at {engine.events_processed} events, "
                f"before the {barrier}-event barrier"
            )

    def finish(self):
        raise NotImplementedError

    def extras(self):
        return {}

    def _attach_observers(self, kernel):
        """The identical observer set on every execution of this
        program — uninterrupted, checkpointed, or resumed."""
        from repro.obs import FlightRecorder, SchedulerMetrics

        self.kernel = kernel
        kernel.probes.subscribe(self.stream)
        self.metrics = SchedulerMetrics.attach(kernel)
        self.recorder = FlightRecorder.attach(kernel, seed=self.seed)

    def _base_payload(self, run_report):
        return {
            "program": dict(self.spec),
            "events_processed": self.kernel.engine.events_processed,
            "final_now": self.kernel.engine.now,
            "probe_events": self.stream.events,
            "probe_stream_sha256": self.stream.hexdigest(),
            "run_report": run_report,
        }


class OverheadsProgram(ProgramRun):
    """The fig10-style evaluation workload (``repro report``'s default
    shape): one task, ``np`` parallel optional parts, ``jobs`` jobs."""

    kind = "overheads"

    def start(self):
        from repro.bench.overheads import (
            OPTIONAL_DEADLINE,
            make_eval_task,
        )
        from repro.core.middleware import RTSeed
        from repro.hardware.loads import BackgroundLoad

        spec = self.spec
        middleware = RTSeed(
            load=BackgroundLoad[spec.get("load", "NONE")],
            seed=self.seed,
            engine=spec["engine"],
        )
        middleware.add_task(
            make_eval_task(spec.get("np", 8)),
            n_jobs=spec.get("jobs", 5),
            cpu=0,
            policy=spec.get("policy", "one_by_one"),
            optional_deadline=OPTIONAL_DEADLINE,
        )
        self.middleware = middleware
        self._attach_observers(middleware.kernel)
        middleware.start()
        return self

    def finish(self):
        from repro.obs import RunReport

        self.middleware.finish()
        report = RunReport.collect(self.kernel, metrics=self.metrics,
                                   include_wallclock=False)
        return self._base_payload(report.to_dict())

    def extras(self):
        return {"flight": capture_flight(self.recorder)}


class TradeProgram(ProgramRun):
    """The end-to-end real-time trading system."""

    kind = "trade"

    def start(self):
        from repro.hardware.loads import BackgroundLoad
        from repro.trading.system import RealTimeTradingSystem

        spec = self.spec
        system = RealTimeTradingSystem(
            n_seconds=spec.get("seconds", 12),
            seed=self.seed,
            policy=spec.get("policy", "one_by_one"),
            load=BackgroundLoad[spec.get("load", "NONE")],
            engine=spec["engine"],
        )
        self.system = system
        self._attach_observers(system.middleware.kernel)
        system.start()
        return self

    def finish(self):
        from repro.obs import RunReport

        report = self.system.finish()
        run_report = RunReport.collect(self.kernel,
                                       metrics=self.metrics,
                                       include_wallclock=False)
        payload = self._base_payload(run_report.to_dict())
        payload["trading"] = report.summary()
        return payload

    def extras(self):
        return {
            "trading": capture_trading(self.system.task,
                                       self.system.broker),
            "flight": capture_flight(self.recorder),
        }


class FaultsProgram(ProgramRun):
    """A canned resilience scenario — fault plan active, hardening
    stack wired (:mod:`repro.faults.campaign`)."""

    kind = "faults"

    def start(self):
        from repro.faults.campaign import prepare_scenario

        spec = self.spec
        scenario = prepare_scenario(
            spec["scenario"],
            n_seconds=spec.get("seconds", 12),
            seed=self.seed,
            engine=spec["engine"],
        )
        self.scenario = scenario
        # the scenario wires its own flight recorder; ride it instead
        # of attaching a second ring
        self.kernel = scenario.kernel
        self.kernel.probes.subscribe(self.stream)
        self.recorder = scenario.recorder
        return self

    def finish(self):
        result = self.scenario.finish()
        payload = self._base_payload(result.pop("run_report"))
        payload["scenario"] = result
        return payload

    def extras(self):
        scenario = self.scenario
        return {
            "resilience": capture_resilience(
                retry=scenario.retry, watchdog=scenario.watchdog,
                degrade=scenario.degrade,
            ),
            "injected": dict(scenario.injector.counts),
            "trading": capture_trading(scenario.system.task,
                                       scenario.system.broker),
            "flight": capture_flight(self.recorder),
        }


class CheckProgram(ProgramRun):
    """A conformance-check scenario (``repro check``), for
    check-artifact time-travel: the spec embeds the full scenario dict
    (:meth:`repro.check.scenario.Scenario.to_dict`)."""

    kind = "check"

    def start(self):
        from repro.check.runner import build_middleware

        spec = self.spec
        middleware, events = build_middleware(
            spec["scenario"],
            collect_kernel_events=spec.get("collect_kernel_events",
                                           True),
            engine=spec["engine"],
            cost_model=spec.get("cost_model", "zero"),
            noise_seed=spec.get("noise_seed", 0),
        )
        self.middleware = middleware
        self.events = events
        self._attach_observers(middleware.kernel)
        middleware.start()
        return self

    def finish(self):
        from repro.check.runner import MAX_KERNEL_EVENTS
        from repro.obs import RunReport
        from repro.simkernel.errors import SimKernelError

        crash = None
        budget = MAX_KERNEL_EVENTS - self.kernel.engine.events_processed
        try:
            self.middleware.finish(max_events=max(budget, 0))
        except SimKernelError as error:
            crash = f"{type(error).__name__}: {error}"
        self.crash = crash
        report = RunReport.collect(self.kernel, metrics=self.metrics,
                                   include_wallclock=False)
        payload = self._base_payload(report.to_dict())
        payload["crash"] = crash
        payload["check_events"] = len(self.events)
        return payload

    def extras(self):
        return {"flight": capture_flight(self.recorder)}


#: Program registry: spec ``kind`` -> class.
PROGRAMS = {
    OverheadsProgram.kind: OverheadsProgram,
    TradeProgram.kind: TradeProgram,
    FaultsProgram.kind: FaultsProgram,
    CheckProgram.kind: CheckProgram,
}


def build_program(spec):
    """Instantiate (without starting) the program a spec describes."""
    kind = spec.get("kind")
    if kind not in PROGRAMS:
        raise SnapshotError(
            f"unknown program kind {kind!r}; valid: {sorted(PROGRAMS)}"
        )
    return PROGRAMS[kind](spec)
