"""Snapshot / restore entry points.

``snapshot()`` captures a started program at an event barrier;
``restore()`` rebuilds the program in a fresh process, fast-forwards
to the barrier, and **attests** the live state against the captured
digest before handing the run back.  Because the rebuilt run is the
same deterministic computation from t=0, everything it goes on to
produce — probe streams, metrics, reports — is byte-identical to the
uninterrupted run (the tier-1 suite and the CI ``snapshot-smoke`` job
enforce exactly that, on both backends, fault plans included).
"""

from repro.snapshot.core import (
    SnapshotError,
    SnapshotMismatchError,
    snapshot_kernel,
    validate_snapshot,
)
from repro.snapshot.programs import build_program
from repro.snapshot.state import capture_state, state_digest


def snapshot(run, at_events=None):
    """Capture a started :class:`~repro.snapshot.programs.ProgramRun`.

    :param run: a program whose ``start()`` has been called.
    :param at_events: optional barrier — the engine is driven to
        exactly this many processed events first (error if the run
        drains earlier); ``None`` captures wherever the run is now.
    :returns: the ``rtseed-snapshot/1`` document.
    """
    if run.kernel is None:
        raise SnapshotError("program not started: call run.start()")
    if at_events is not None:
        run.run_to_events(at_events)
    return snapshot_kernel(
        run.kernel, dict(run.spec), extras=run.extras(),
        seed=run.seed, backend=run.spec.get("engine"),
    )


def restore(document, expect_backend=None):
    """Rebuild + fast-forward + attest; returns the positioned run.

    Refuses (:class:`SnapshotMismatchError`) when the re-executed
    state does not reproduce the captured digest — wrong backend,
    wrong seed, changed code, or a tampered document.  ``finish()``
    on the returned run continues to the end of the run.

    :param expect_backend: optional backend name the caller requires;
        mismatching documents are refused before any work happens.
    """
    validate_snapshot(document)
    backend = document.get("backend")
    if expect_backend is not None and backend != expect_backend:
        raise SnapshotMismatchError(
            f"snapshot was taken on the {backend!r} backend, "
            f"resume requested {expect_backend!r}"
        )
    run = build_program(document["program"])
    if run.spec.get("engine") != backend:
        raise SnapshotMismatchError(
            f"program spec backend {run.spec.get('engine')!r} does "
            f"not match snapshot header {backend!r}"
        )
    run.start()
    barrier = document["barrier"]
    run.run_to_events(barrier["events_processed"])
    engine = run.kernel.engine
    if engine.now != barrier["now"]:
        raise SnapshotMismatchError(
            f"clock diverged at the barrier: replay reached "
            f"{engine.now!r}, snapshot recorded {barrier['now']!r}"
        )
    live = capture_state(run.kernel, extras=run.extras())
    digest = state_digest(live)
    if digest != document["digest"]:
        raise SnapshotMismatchError(
            f"state attestation failed at the barrier "
            f"({barrier['events_processed']} events): replay digest "
            f"{digest} != snapshot digest {document['digest']} — "
            f"refusing to resume"
        )
    return run


def resume_to_end(document, expect_backend=None):
    """Restore and run to completion; returns the program payload."""
    return restore(document, expect_backend=expect_backend).finish()
