"""``repro.snapshot`` — deterministic checkpoint / restore.

Versioned, seed-stamped serialization of complete simulation state
(``rtseed-snapshot/1``) with attested deterministic-replay restore.
See ``docs/SNAPSHOTS.md`` for the format, the guarantees, and the
resume workflows (farm checkpoints, campaign ``--resume``, check
time-travel).
"""

from repro.snapshot.core import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    SnapshotMismatchError,
    build_snapshot,
    inspect_snapshot,
    load_snapshot,
    render_snapshot,
    snapshot_kernel,
    validate_snapshot,
    write_snapshot,
)
from repro.snapshot.programs import (
    PROGRAMS,
    CheckProgram,
    FaultsProgram,
    OverheadsProgram,
    ProgramRun,
    TradeProgram,
    build_program,
)
from repro.snapshot.resume import restore, resume_to_end, snapshot
from repro.snapshot.state import (
    capture_state,
    describe_callback,
    state_digest,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "SnapshotMismatchError",
    "build_snapshot",
    "inspect_snapshot",
    "load_snapshot",
    "render_snapshot",
    "snapshot_kernel",
    "validate_snapshot",
    "write_snapshot",
    "PROGRAMS",
    "CheckProgram",
    "FaultsProgram",
    "OverheadsProgram",
    "ProgramRun",
    "TradeProgram",
    "build_program",
    "restore",
    "resume_to_end",
    "snapshot",
    "capture_state",
    "describe_callback",
    "state_digest",
]
