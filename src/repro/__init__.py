"""RT-Seed reproduction: real-time middleware for semi-fixed-priority
scheduling (Chishiro, MIDDLEWARE 2014), rebuilt end to end on a
deterministic simulated Linux kernel.

Subpackages:

* :mod:`repro.simkernel` — the simulated kernel substrate.
* :mod:`repro.model` — imprecise-computation task models.
* :mod:`repro.sched` — scheduling algorithms and analysis.
* :mod:`repro.hardware` — Xeon Phi machine and overhead models.
* :mod:`repro.core` — the RT-Seed middleware (the contribution).
* :mod:`repro.trading` — the real-time trading application substrate.
* :mod:`repro.bench` — the Section V experiment harness.

See README.md for a quickstart, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
