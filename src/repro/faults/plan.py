"""Declarative fault plans.

A :class:`FaultPlan` is data, not behaviour: a list of
:class:`FaultSpec` entries (*which* fault, *where* in simulated time,
*how likely*, with what parameters) plus one seed.  The
:class:`~repro.faults.injectors.FaultInjector` turns a plan into hooks
on a concrete kernel/cost-model/trading stack; the plan itself is
JSON-round-trippable so campaigns can embed the exact plan in their
reports and tests can assert plans reproduce.

Sites
-----

===================  =====================================================
site                 effect (parameters)
===================  =====================================================
``signal_drop``      a posted signal is silently lost
``signal_delay``     a posted signal is delivered late (``delay`` ns)
``timer_drift``      an armed timer fires late (``skew`` ns)
``spurious_wakeup``  a ``pthread_cond_wait`` waiter wakes with no signal
                     (after ``delay`` ns)
``cpu_stall``        per-CPU micro-cost multiplier (``factor`` >= 1,
                     ``cpus`` list or all)
``core_throttle``    a core's throughput is scaled (``factor`` in (0, 1],
                     ``cores`` list or [0]) for the window
``net_timeout``      a market-data fetch attempt times out after burning
                     ``timeout`` ns of budget
``feed_gap``         a feed tick never arrives (previous tick is reused)
``feed_stale``       a feed tick carries the previous price (frozen quote)
``broker_reject``    the broker rejects an order
``broker_disconnect``  the broker link drops mid-submit
                     (:class:`~repro.trading.broker.\
BrokerDisconnectedError`)
===================  =====================================================

Probabilistic sites draw from streams derived from ``(plan seed, spec
index)``, so a plan is fully deterministic: same plan + same seed ==
same injected faults, event for event.
"""

#: Every valid fault site, with the layer it hooks.
FAULT_SITES = {
    "signal_drop": "simkernel (post_signal)",
    "signal_delay": "simkernel (post_signal)",
    "timer_drift": "simkernel (timer_settime)",
    "spurious_wakeup": "simkernel (cond_wait)",
    "cpu_stall": "hardware (cost model)",
    "core_throttle": "hardware (core throughput)",
    "net_timeout": "trading (network fetch)",
    "feed_gap": "trading (market feed)",
    "feed_stale": "trading (market feed)",
    "broker_reject": "trading (broker)",
    "broker_disconnect": "trading (broker)",
}


class FaultSpec:
    """One fault site armed over a window of simulated time.

    :param site: a key of :data:`FAULT_SITES`.
    :param start: window start, absolute simulated ns (inclusive).
    :param end: window end, ns (exclusive); ``None`` = until the end.
    :param probability: chance each opportunity inside the window
        actually injects (1.0 = always).
    :param params: site-specific parameters (see the module table).
    """

    def __init__(self, site, start=0.0, end=None, probability=1.0,
                 **params):
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; valid: "
                f"{sorted(FAULT_SITES)}"
            )
        if start < 0:
            raise ValueError("window start must be >= 0")
        if end is not None and end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        for key, value in params.items():
            if not isinstance(value, (int, float, str, bool, list)):
                raise TypeError(
                    f"param {key}={value!r} is not JSON-serializable"
                )
        self.site = site
        self.start = float(start)
        self.end = None if end is None else float(end)
        self.probability = float(probability)
        self.params = dict(params)

    def active_at(self, time):
        """True iff ``time`` falls inside this spec's window."""
        if time < self.start:
            return False
        return self.end is None or time < self.end

    def to_dict(self):
        data = {"site": self.site, "start": self.start, "end": self.end,
                "probability": self.probability}
        data.update(self.params)
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        site = data.pop("site")
        start = data.pop("start", 0.0)
        end = data.pop("end", None)
        probability = data.pop("probability", 1.0)
        return cls(site, start=start, end=end, probability=probability,
                   **data)

    def __repr__(self):
        window = f"[{self.start:.0f}, " + (
            "inf)" if self.end is None else f"{self.end:.0f})"
        )
        return (
            f"<FaultSpec {self.site} {window} p={self.probability}"
            f"{' ' + repr(self.params) if self.params else ''}>"
        )


class FaultPlan:
    """An ordered list of :class:`FaultSpec` plus the campaign seed.

    Spec order matters: each spec's random stream is derived from
    ``(seed, its index)``, so reordering a plan is a different plan.

    :param specs: iterable of :class:`FaultSpec` (or dicts).
    :param seed: base seed for every probabilistic decision.
    :param name: label carried into reports and traces.
    """

    def __init__(self, specs=(), seed=0, name="plan"):
        self.specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in specs
        ]
        self.seed = int(seed)
        self.name = str(name)

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_site(self, site):
        """``(index, spec)`` pairs of every spec at ``site``, in order."""
        return [(index, spec) for index, spec in enumerate(self.specs)
                if spec.site == site]

    @property
    def sites(self):
        """The distinct sites this plan arms."""
        return sorted({spec.site for spec in self.specs})

    def to_dict(self):
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(specs=data.get("specs", ()), seed=data.get("seed", 0),
                   name=data.get("name", "plan"))

    def __repr__(self):
        return (
            f"<FaultPlan {self.name!r} seed={self.seed} "
            f"specs={len(self.specs)}>"
        )


def no_faults(name="baseline"):
    """The empty plan: attaching it must leave every result unchanged."""
    return FaultPlan([], seed=0, name=name)
