"""Turn a :class:`~repro.faults.plan.FaultPlan` into live hooks.

One :class:`FaultInjector` owns every probabilistic decision of a run.
It hooks three layers:

* **simkernel** — installed as ``kernel.faults`` (the kernel's
  duck-typed hook object): dropped/delayed signal posts, skewed timer
  expiries, spurious condvar wakeups.
* **hardware** — installed as the cost model's ``stall`` provider
  (per-CPU micro-cost multipliers) and as engine events that throttle /
  restore core throughput windows.
* **trading** — :class:`NetworkFaultProxy` / :class:`FeedFaultProxy` /
  :class:`BrokerFaultProxy` wrap the respective objects with the same
  interface, manufacturing timeouts, gaps, stale quotes, rejects and
  disconnects.

Every injected fault is published on the probe bus as a ``fault.*``
event and counted in :attr:`FaultInjector.counts`; after each one the
kernel invariant checker
(:func:`repro.faults.invariants.check_kernel_invariants`) runs, so a
fault that corrupts scheduler bookkeeping kills the run immediately
instead of producing quietly-wrong results.

Determinism: kernel-side decisions draw from per-spec stateful streams
(DES event order is itself deterministic); per-item decisions (feed
ticks, fetch attempts) draw from streams derived from the item's index,
so they are stable under repeated queries and query-order changes.
``hash()`` is never used — it is randomized across interpreter runs.
"""

from functools import partial
from random import Random

from repro.faults.invariants import check_kernel_invariants
from repro.faults.plan import FaultPlan
from repro.simkernel.time_units import MSEC
from repro.trading.broker import BrokerDisconnectedError
from repro.trading.feed import Tick

_MIX = 1_000_003  # a prime stride; avoids hash() (randomized for str)
_MASK = (1 << 63) - 1


def _derive(*parts):
    """Mix integers into one deterministic 63-bit seed."""
    seed = 0
    for part in parts:
        seed = (seed * _MIX + int(part) + 1) & _MASK
    return seed


class FaultInjector:
    """Executes a :class:`FaultPlan` against a simulated stack.

    :param plan: the :class:`~repro.faults.plan.FaultPlan` to run.

    Usage: construct, wrap the trading objects you hand to the system
    (:meth:`wrap_network` / :meth:`wrap_feed` / :meth:`wrap_broker`),
    then :meth:`attach` the built kernel before running.  With an empty
    plan every step is a no-op: ``kernel.faults`` stays ``None``, the
    cost model keeps ``stall=None``, and the wrappers return the
    original objects — a no-fault run is bit-identical to one that
    never imported this module.
    """

    def __init__(self, plan):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan
        self.kernel = None
        #: injected-fault count per site (only sites the plan arms).
        self.counts = {site: 0 for site in plan.sites}
        self._streams = {
            index: Random(_derive(plan.seed, index))
            for index, _spec in enumerate(plan.specs)
        }
        self._by_site = {site: plan.for_site(site) for site in plan.sites}
        self._throttled = {}  # core_id -> original speed

    # -- shared helpers -------------------------------------------------

    @property
    def now(self):
        return self.kernel.engine.now if self.kernel is not None else 0.0

    def _specs(self, site):
        return self._by_site.get(site, ())

    def _chance(self, index, spec):
        """One stateful draw for spec ``index`` (DES-ordered sites)."""
        if spec.probability >= 1.0:
            return True
        return self._streams[index].random() < spec.probability

    @staticmethod
    def _item_chance(plan_seed, index, spec, *item):
        """Per-item draw, stable under query order (feed/fetch sites)."""
        if spec.probability >= 1.0:
            return True
        rng = Random(_derive(plan_seed, index, *item))
        return rng.random() < spec.probability

    def _record(self, site, **payload):
        """Count, publish, and invariant-check one injected fault."""
        self.counts[site] = self.counts.get(site, 0) + 1
        if self.kernel is not None:
            bus = self.kernel.probes
            if bus.active:
                bus.publish("fault." + site, **payload)
            check_kernel_invariants(self.kernel)

    # -- wiring ---------------------------------------------------------

    def attach(self, kernel, cost_model=None):
        """Wire the kernel-side and hardware-side hooks.

        Only hooks the plan actually arms are installed, so attaching
        an empty plan changes nothing.
        """
        self.kernel = kernel
        kernel_sites = ("signal_drop", "signal_delay", "timer_drift",
                        "spurious_wakeup")
        if any(self._specs(site) for site in kernel_sites):
            kernel.faults = self
        if self._specs("cpu_stall"):
            if cost_model is None:
                cost_model = kernel.cost_model
            cost_model.stall = self
            for _index, spec in self._specs("cpu_stall"):
                kernel.engine.schedule_at(
                    max(spec.start, kernel.engine.now),
                    partial(self._stall_begin, spec),
                )
        for _index, spec in self._specs("core_throttle"):
            kernel.engine.schedule_at(
                max(spec.start, kernel.engine.now),
                partial(self._throttle_begin, spec),
            )
        return self

    def wrap_network(self, network):
        """Proxy ``network`` if the plan arms fetch faults."""
        if not self._specs("net_timeout"):
            return network
        return NetworkFaultProxy(network, self)

    def wrap_feed(self, feed):
        """Proxy ``feed`` if the plan arms feed faults."""
        if not (self._specs("feed_gap") or self._specs("feed_stale")):
            return feed
        return FeedFaultProxy(feed, self)

    def wrap_broker(self, broker):
        """Proxy ``broker`` if the plan arms broker faults."""
        if not (self._specs("broker_reject")
                or self._specs("broker_disconnect")):
            return broker
        return BrokerFaultProxy(broker, self)

    # -- simkernel hooks (duck-typed kernel.faults interface) -----------

    def allow_signal_post(self, thread, signum):
        """Decide the fate of a posted signal: deliver, drop, or delay.

        Returning False swallows the post; a delayed signal re-enters
        through :meth:`~repro.simkernel.kernel.Kernel.post_signal_direct`
        so it is never intercepted twice.
        """
        now = self.now
        for index, spec in self._specs("signal_drop"):
            if spec.active_at(now) and self._chance(index, spec):
                self._record("signal_drop", tid=thread.tid,
                             thread=thread.name, signum=signum)
                return False
        for index, spec in self._specs("signal_delay"):
            if spec.active_at(now) and self._chance(index, spec):
                delay = float(spec.params.get("delay", 2 * MSEC))
                self.kernel.engine.schedule_at(
                    now + delay,
                    partial(self._delayed_post, thread, signum),
                )
                self._record("signal_delay", tid=thread.tid,
                             thread=thread.name, signum=signum,
                             delay=delay)
                return False
        return True

    def _delayed_post(self, thread, signum):
        if thread.alive:
            self.kernel.post_signal_direct(thread, signum)

    def adjust_timer_expiry(self, timer, expires):
        """Skew a timer's programmed expiry (late fire / drift)."""
        now = self.now
        for index, spec in self._specs("timer_drift"):
            if spec.active_at(now) and self._chance(index, spec):
                skew = float(spec.params.get("skew", 1 * MSEC))
                expires += skew
                self._record("timer_drift", timer=timer.name, skew=skew,
                             at=expires)
        return expires

    def on_cond_block(self, cond, thread):
        """Maybe schedule a spurious wakeup for a fresh condvar waiter."""
        now = self.now
        for index, spec in self._specs("spurious_wakeup"):
            if spec.active_at(now) and self._chance(index, spec):
                delay = float(spec.params.get("delay", 0.5 * MSEC))
                self.kernel.engine.schedule_at(
                    now + delay,
                    partial(self._spurious_fire, cond, thread),
                )
                return

    def _spurious_fire(self, cond, thread):
        if self.kernel.spurious_wakeup(cond, thread):
            self._record("spurious_wakeup", tid=thread.tid,
                         thread=thread.name, cond=cond.name)

    # -- hardware hooks -------------------------------------------------

    def multiplier(self, cpu):
        """Cost-model stall provider: product of active windows."""
        now = self.now
        factor = 1.0
        for _index, spec in self._specs("cpu_stall"):
            if not spec.active_at(now):
                continue
            cpus = spec.params.get("cpus")
            if cpus is None or cpu in cpus:
                factor *= float(spec.params.get("factor", 2.0))
        return factor

    def _stall_begin(self, spec):
        self._record(
            "cpu_stall",
            cpus=spec.params.get("cpus"),
            factor=float(spec.params.get("factor", 2.0)),
            until=spec.end,
        )

    def _throttle_begin(self, spec):
        factor = float(spec.params.get("factor", 0.5))
        cores = spec.params.get("cores", [0])
        for core_id in cores:
            core = self.kernel.topology.cores[core_id]
            self._throttled.setdefault(core_id, core.speed)
            self.kernel.set_core_speed(core_id,
                                       self._throttled[core_id] * factor)
            self._record("core_throttle", core=core_id, factor=factor,
                         until=spec.end)
        if spec.end is not None:
            self.kernel.engine.schedule_at(
                spec.end, partial(self._throttle_end, spec)
            )

    def _throttle_end(self, spec):
        for core_id in spec.params.get("cores", [0]):
            original = self._throttled.pop(core_id, None)
            if original is None:
                continue
            self.kernel.set_core_speed(core_id, original)
            self._record("core_restore", core=core_id)

    # -- trading hooks (used by the proxies below) ----------------------

    def fetch_fault(self, job_index, attempt):
        """Timeout budget (ns) if this fetch attempt times out, else
        ``None``."""
        now = self.now
        for index, spec in self._specs("net_timeout"):
            if spec.active_at(now) and self._item_chance(
                    self.plan.seed, index, spec, job_index, attempt):
                timeout = float(spec.params.get("timeout", 150 * MSEC))
                self._record("net_timeout", job=job_index,
                             attempt=attempt, timeout=timeout)
                return timeout
        return None

    def feed_fault(self, tick_index, tick_time):
        """``"gap"``, ``"stale"``, or ``None`` for one feed tick.

        Decided per tick *index* (window checked against the tick's own
        timestamp) so repeated queries agree.
        """
        for site in ("feed_gap", "feed_stale"):
            for index, spec in self._specs(site):
                if spec.active_at(tick_time) and self._item_chance(
                        self.plan.seed, index, spec, tick_index):
                    return site.split("_", 1)[1]
        return None

    def broker_fault(self, side, units):
        """``"disconnect"``, ``"reject"``, or ``None`` for one submit."""
        now = self.now
        for index, spec in self._specs("broker_disconnect"):
            if spec.active_at(now) and self._chance(index, spec):
                self._record("broker_disconnect", side=side.name.lower(),
                             units=units)
                return "disconnect"
        for index, spec in self._specs("broker_reject"):
            if spec.active_at(now) and self._chance(index, spec):
                self._record("broker_reject", side=side.name.lower(),
                             units=units)
                return "reject"
        return None

    def record_feed_fault(self, kind, tick_index):
        """Publish a feed fault the first time its tick is touched."""
        self._record("feed_" + kind, index=tick_index)


class NetworkFaultProxy:
    """Wraps a :class:`~repro.trading.network.NetworkModel`, injecting
    fetch timeouts; everything else delegates."""

    def __init__(self, inner, injector):
        self._inner = inner
        self._injector = injector

    def fetch_outcome(self, job_index, attempt=0):
        timeout = self._injector.fetch_fault(job_index, attempt)
        if timeout is not None:
            return timeout, True
        return self._inner.fetch_outcome(job_index, attempt)

    def fetch_latency(self, job_index, attempt=0):
        return self._inner.fetch_latency(job_index, attempt)

    def worst_case(self, quantile_sigma=3.0):
        return self._inner.worst_case(quantile_sigma)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FeedFaultProxy:
    """Wraps a market feed, injecting gaps (last quote reused) and
    stale ticks (frozen price, fresh timestamp)."""

    def __init__(self, inner, injector):
        self._inner = inner
        self._injector = injector
        self._decisions = {}

    def _decision(self, index):
        if index not in self._decisions:
            kind = self._injector.feed_fault(
                index, index * self._inner.interval
            )
            self._decisions[index] = kind
            if kind is not None:
                self._injector.record_feed_fault(kind, index)
        return self._decisions[index]

    def _effective(self, index):
        """Walk gaps back to the last tick that actually arrived."""
        while index > 0 and self._decision(index) == "gap":
            index -= 1
        return index

    def mid(self, index):
        kind = self._decision(index)
        if kind == "gap":
            return self._inner.mid(self._effective(index))
        if kind == "stale" and index > 0:
            return self._inner.mid(index - 1)
        return self._inner.mid(index)

    def tick(self, index):
        kind = self._decision(index)
        if kind == "gap":
            return self._inner.tick(self._effective(index))
        if kind == "stale" and index > 0:
            fresh = self._inner.tick(index)
            half = self._inner.spread / 2.0
            stale_mid = self._inner.mid(index - 1)
            return Tick(fresh.time, stale_mid - half, stale_mid + half)
        return self._inner.tick(index)

    def history(self, index, length):
        return self._inner.history(self._effective(index), length)

    def index_at(self, time):
        return self._inner.index_at(time)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class BrokerFaultProxy:
    """Wraps a :class:`~repro.trading.broker.SimBroker`, injecting
    rejects and disconnects at submit time."""

    def __init__(self, inner, injector):
        self._inner = inner
        self._injector = injector

    def submit(self, time, side, units, tick):
        kind = self._injector.broker_fault(side, units)
        if kind == "disconnect":
            raise BrokerDisconnectedError(
                "broker link down (injected fault)"
            )
        if kind == "reject":
            self._inner.rejected += 1
            return None
        return self._inner.submit(time, side, units, tick)

    def __getattr__(self, name):
        return getattr(self._inner, name)
