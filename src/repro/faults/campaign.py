"""Resilience campaigns: canned fault scenarios + a JSON report.

A *scenario* pairs a :class:`~repro.faults.plan.FaultPlan` with the
hardening configuration under test (retry policy, overrun watchdog,
degraded-mode controller) and runs the end-to-end trading system
(:class:`~repro.trading.system.RealTimeTradingSystem`) under it.  The
*campaign* sweeps a scenario matrix and emits one JSON resilience
report: deadline misses, QoS, injected-fault counts, recovery latency.

Everything is seeded and simulated-time only, so a campaign is fully
deterministic: the same scenarios + seed produce a byte-identical
report (CI runs a small campaign twice and compares).
"""

import json

from repro.core.resilience import (
    DegradedModeController,
    OverrunWatchdog,
    RetryPolicy,
)
from repro.faults.injectors import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.flightrec import FlightRecorder
from repro.obs.profile import NullProfile
from repro.obs.report import RunReport
from repro.simkernel.time_units import MSEC, SEC
from repro.trading.network import NetworkModel
from repro.trading.system import RealTimeTradingSystem

#: probe topics the campaign counts per scenario.
_COUNTED_TOPICS = (
    "fault.*",
    "degrade.*",
    "rtseed.job_abort",
    "rtseed.discard",
    "trading.fetch_retry",
    "trading.broker_error",
)


def _signal_storm(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("signal_drop", start=0.25 * horizon,
                      end=0.60 * horizon, probability=0.5),
            FaultSpec("signal_delay", start=0.25 * horizon,
                      end=0.60 * horizon, probability=0.3,
                      delay=3 * MSEC),
            FaultSpec("spurious_wakeup", probability=0.2,
                      delay=0.5 * MSEC),
        ],
        seed=seed, name="signal_storm",
    )


def _timer_drift(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("timer_drift", start=0.2 * horizon,
                      end=0.7 * horizon, probability=0.6,
                      skew=4 * MSEC),
        ],
        seed=seed, name="timer_drift",
    )


def _net_timeouts(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("net_timeout", start=0.2 * horizon,
                      end=0.8 * horizon, probability=0.35,
                      timeout=120 * MSEC),
        ],
        seed=seed, name="net_timeouts",
    )


def _feed_outage(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("feed_gap", start=0.30 * horizon,
                      end=0.50 * horizon, probability=0.5),
            FaultSpec("feed_stale", start=0.50 * horizon,
                      end=0.70 * horizon, probability=0.3),
        ],
        seed=seed, name="feed_outage",
    )


def _broker_flap(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("broker_reject", start=0.2 * horizon,
                      end=0.5 * horizon, probability=0.4),
            FaultSpec("broker_disconnect", start=0.5 * horizon,
                      end=0.8 * horizon, probability=0.4),
        ],
        seed=seed, name="broker_flap",
    )


def _cpu_stall(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("cpu_stall", start=0.3 * horizon,
                      end=0.6 * horizon, factor=3.0),
        ],
        seed=seed, name="cpu_stall",
    )


def _overload_degrade(horizon, seed):
    # Throttle the mandatory thread's core hard enough that jobs blow
    # through their deadlines, driving the controller into degraded
    # mode; the restore at window end lets it recover measurably.
    return FaultPlan(
        [
            FaultSpec("core_throttle", start=0.25 * horizon,
                      end=0.50 * horizon, factor=0.05, cores=[0]),
        ],
        seed=seed, name="overload_degrade",
    )


#: The canned scenario matrix: plan factory + hardening configuration.
SCENARIOS = {
    "baseline": {
        "description": "no faults, no hardening — the parity reference",
        "plan": lambda horizon, seed: FaultPlan([], seed=seed,
                                                name="baseline"),
    },
    "signal_storm": {
        "description": "dropped/late SIGALRMs + spurious wakeups; the "
                       "overrun watchdog backstops lost terminations",
        "plan": _signal_storm,
        "watchdog": True,
        # tight OD so the termination path (and thus SIGALRM traffic)
        # is exercised every job
        "system": {"optional_deadline": 150 * MSEC},
    },
    "timer_drift": {
        "description": "optional-deadline timers fire late",
        "plan": _timer_drift,
        "watchdog": True,
        "system": {"optional_deadline": 150 * MSEC},
    },
    "net_timeouts": {
        "description": "market-data fetch timeouts, retried within the "
                       "deadline budget",
        "plan": _net_timeouts,
        "network": True,
        "retry": True,
    },
    "feed_outage": {
        "description": "feed gaps then stale quotes",
        "plan": _feed_outage,
    },
    "broker_flap": {
        "description": "broker rejects then disconnects",
        "plan": _broker_flap,
    },
    "cpu_stall": {
        "description": "transient 3x micro-cost stall on every CPU",
        "plan": _cpu_stall,
        "watchdog": True,
    },
    "overload_degrade": {
        "description": "core-0 throttle forces deadline misses; "
                       "admission control sheds optional parts and "
                       "recovers after the window",
        "plan": _overload_degrade,
        "watchdog": True,
        "degrade": True,
    },
}


class ScenarioRun:
    """A prepared (not yet run) campaign scenario.

    :func:`prepare_scenario` builds the full system + fault plan +
    hardening stack and *starts* the middleware (plan + spawn) without
    driving the engine.  :meth:`finish` drains the kernel and builds
    the scenario's report dict.  The split exists for the snapshot
    layer (:mod:`repro.snapshot.programs`), which fast-forwards the
    engine to a barrier between the two; :func:`run_scenario` is the
    one-shot composition everything else uses.
    """

    def __init__(self, name, config, n_seconds, seed, plan, injector,
                 system, events, retry, watchdog, degrade, recorder,
                 profile):
        self.name = name
        self.config = config
        self.n_seconds = n_seconds
        self.seed = seed
        self.plan = plan
        self.injector = injector
        self.system = system
        self.kernel = system.middleware.kernel
        self.events = events
        self.retry = retry
        self.watchdog = watchdog
        self.degrade = degrade
        self.recorder = recorder
        self.profile = profile

    def finish(self):
        """Drain the kernel; returns the scenario's report dict."""
        with self.profile.section(f"faults.{self.name}.run"):
            report = self.system.finish()
        task = self.system.task
        probes = report.task_result.probes
        misses = len(report.task_result.deadline_misses)
        summary = report.summary()

        result = {
            "scenario": self.name,
            "description": self.config["description"],
            "seed": self.seed,
            "n_seconds": self.n_seconds,
            "plan": self.plan.to_dict(),
            "injected": dict(self.injector.counts),
            "events": self.events,
            "jobs": len(probes),
            "deadline_misses": misses,
            "miss_ratio": misses / len(probes) if probes else 0.0,
            "aborted_jobs": sum(1 for p in probes if p.aborted),
            "qos_ms": summary["qos_ms"],
            "trades": summary["trades"],
            "rejected": summary["rejected"],
            "equity": summary["equity"],
            "broker_failures": len(task.broker_failures),
            "run_report": RunReport.collect(
                self.kernel, injector=self.injector,
                watchdog=self.watchdog, degrade=self.degrade,
                include_wallclock=False,
            ).to_dict(),
        }
        if self.watchdog is not None:
            result["watchdog_fires"] = len(self.watchdog.fired)
        if self.degrade is not None:
            degrade = self.degrade
            result["degraded"] = {
                "episodes": len(degrade.episodes),
                "shed_jobs": degrade.shed_jobs,
                "recovery_latency_ms": [
                    latency / MSEC
                    for latency in degrade.recovery_latencies
                ],
            }
        return result


def prepare_scenario(name, n_seconds=30, seed=0, flight_dir=None,
                     profile=None, _sabotage=None, engine=None):
    """Build one canned scenario, started but not run; returns a
    :class:`ScenarioRun` (see :func:`run_scenario` for parameters;
    ``engine`` optionally pins the execution-core backend)."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {sorted(SCENARIOS)}"
        )
    if profile is None:
        profile = NullProfile()
    config = SCENARIOS[name]
    horizon = n_seconds * SEC
    plan = config["plan"](horizon, seed)
    injector = FaultInjector(plan)

    with profile.section(f"faults.{name}.setup"):
        network = None
        if config.get("network"):
            network = injector.wrap_network(NetworkModel(seed=seed))
        retry = RetryPolicy(max_attempts=3, backoff=5 * MSEC,
                            reserve=100 * MSEC) if config.get("retry") else None
        watchdog = OverrunWatchdog(grace=5 * MSEC) \
            if config.get("watchdog") else None
        degrade = DegradedModeController(enter_after=3, exit_after=2) \
            if config.get("degrade") else None

        system = RealTimeTradingSystem(
            n_seconds=n_seconds, seed=seed, network=network,
            retry_policy=retry, watchdog=watchdog, degrade=degrade,
            engine=engine, **config.get("system", {}),
        )
        task = system.task
        task.feed = injector.wrap_feed(task.feed)
        task.broker = injector.wrap_broker(task.broker)
        kernel = system.middleware.kernel

        events = {}

        def count_event(topic, _time, _data):
            events[topic] = events.get(topic, 0) + 1

        kernel.probes.subscribe(count_event, topics=_COUNTED_TOPICS)
        recorder = FlightRecorder.attach(kernel, dump_dir=flight_dir,
                                         seed=seed)
        recorder.degrade = degrade
        injector.attach(kernel)
        if _sabotage is not None:
            _sabotage(kernel)
        system.start()

    return ScenarioRun(name, config, n_seconds, seed, plan, injector,
                       system, events, retry, watchdog, degrade,
                       recorder, profile)


def run_scenario(name, n_seconds=30, seed=0, flight_dir=None,
                 profile=None, _sabotage=None, engine=None):
    """Run one canned scenario; returns its (JSON-ready) report dict.

    :param flight_dir: when set, a
        :class:`~repro.obs.flightrec.FlightRecorder` rides along
        passively and dumps its ring into this directory at every
        failure edge (invariant violation, degraded-mode entry,
        watchdog fire).
    :param profile: optional
        :class:`~repro.obs.profile.WallClockProfile` — setup and run
        are timed under ``faults.<scenario>.setup`` / ``.run``.
        Wall-clock numbers never enter the returned report (it must
        stay byte-deterministic).
    :param _sabotage: test hook — ``f(kernel)`` called after setup,
        before the run; used to plant invariant violations for
        flight-recorder smoke tests.
    :param engine: optional execution-core backend override
        (``"reference"`` / ``"fast"`` / ``None`` = process default).
    """
    return prepare_scenario(
        name, n_seconds=n_seconds, seed=seed, flight_dir=flight_dir,
        profile=profile, _sabotage=_sabotage, engine=engine,
    ).finish()


def assemble_campaign(names, n_seconds, seed, results):
    """Build the campaign document from per-scenario result dicts.

    Shared by the serial sweep (:func:`run_campaign`) and the farmed
    one (``repro.farm.farm_campaign``) so both emit byte-identical
    reports for the same scenario results.  The top-level
    ``run_report`` merges every scenario's per-run telemetry
    (:meth:`repro.obs.report.RunReport.merge`).
    """
    scenarios = dict(zip(names, results))
    document = {
        "campaign": "rtseed-resilience",
        "seed": seed,
        "n_seconds": n_seconds,
        "scenarios": scenarios,
    }
    run_reports = [result["run_report"] for result in results
                   if "run_report" in result]
    if run_reports:
        document["run_report"] = RunReport.merge(run_reports).to_dict()
    return document


class CampaignInterrupted(Exception):
    """A serial campaign stopped on a signal after draining the
    in-flight scenario; ``checkpoint_path`` resumes it."""

    def __init__(self, signum, completed, checkpoint_path=None):
        self.signum = signum
        self.completed = completed
        self.checkpoint_path = checkpoint_path
        hint = (f"; resume from checkpoint {checkpoint_path}"
                if checkpoint_path else "")
        super().__init__(
            f"campaign interrupted: {len(completed)} scenario(s) "
            f"completed{hint}"
        )


def _campaign_checkpoint_document(names, n_seconds, seed, completed):
    """Campaign progress as an ``rtseed-snapshot/1`` document.

    The campaign's unit of determinism is the scenario (each result is
    a pure function of ``(name, n_seconds, seed)``), so its checkpoint
    is completed-results-by-name rather than mid-scenario kernel state
    — same envelope, integrity checks, and CLI (``repro snapshot
    inspect``) as the simulation snapshots.
    """
    from repro.snapshot.core import build_snapshot

    return build_snapshot(
        program={"kind": "campaign", "scenarios": list(names),
                 "n_seconds": n_seconds, "seed": seed},
        barrier={"completed": len(completed)},
        state={"completed": completed},
        seed=seed,
    )


def load_campaign_checkpoint(document, names, n_seconds, seed):
    """Completed ``{name: result}`` from a campaign snapshot document.

    Refuses documents whose program does not exactly match the
    campaign being resumed (scenario list, duration, seed)."""
    from repro.snapshot.core import SnapshotMismatchError, \
        validate_snapshot

    validate_snapshot(document)
    program = document.get("program", {})
    expected = {"kind": "campaign", "scenarios": list(names),
                "n_seconds": n_seconds, "seed": seed}
    if program != expected:
        raise SnapshotMismatchError(
            f"campaign checkpoint program {program!r} does not match "
            f"this campaign {expected!r} — refusing to resume"
        )
    return dict(document["state"]["completed"])


def run_campaign(scenarios=None, n_seconds=30, seed=0, flight_dir=None,
                 profile=None, checkpoint_path=None, resume_from=None,
                 should_stop=None):
    """Sweep ``scenarios`` (default: all) into one resilience report.

    ``flight_dir`` and ``profile`` are forwarded to every
    :func:`run_scenario`; neither affects the report bytes.

    :param checkpoint_path: write a campaign snapshot after every
        completed scenario (crash-resumable; atomic rename).
    :param resume_from: a campaign snapshot document (or ``None``) —
        scenarios it already holds are not re-run.  Because each
        scenario result is a pure function of its parameters, the
        resumed report is byte-identical to an uninterrupted sweep.
    :param should_stop: optional zero-arg callable polled between
        scenarios; truthy → drain and raise
        :class:`CampaignInterrupted` (its return value is passed
        through as the signal number).
    """
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    completed = {}
    if resume_from is not None:
        completed = load_campaign_checkpoint(resume_from, names,
                                             n_seconds, seed)

    def write_checkpoint():
        if checkpoint_path is None:
            return
        from repro.snapshot.core import write_snapshot

        write_snapshot(
            checkpoint_path,
            _campaign_checkpoint_document(names, n_seconds, seed,
                                          completed),
        )

    for name in names:
        if name in completed:
            continue
        signum = should_stop() if should_stop is not None else None
        if signum:
            write_checkpoint()
            raise CampaignInterrupted(signum, completed,
                                      checkpoint_path=checkpoint_path)
        completed[name] = run_scenario(name, n_seconds=n_seconds,
                                       seed=seed, flight_dir=flight_dir,
                                       profile=profile)
        write_checkpoint()
    results = [completed[name] for name in names]
    return assemble_campaign(names, n_seconds, seed, results)


def render_report(report):
    """Serialize a campaign report deterministically (byte-stable)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
