"""Resilience campaigns: canned fault scenarios + a JSON report.

A *scenario* pairs a :class:`~repro.faults.plan.FaultPlan` with the
hardening configuration under test (retry policy, overrun watchdog,
degraded-mode controller) and runs the end-to-end trading system
(:class:`~repro.trading.system.RealTimeTradingSystem`) under it.  The
*campaign* sweeps a scenario matrix and emits one JSON resilience
report: deadline misses, QoS, injected-fault counts, recovery latency.

Everything is seeded and simulated-time only, so a campaign is fully
deterministic: the same scenarios + seed produce a byte-identical
report (CI runs a small campaign twice and compares).
"""

import json

from repro.core.resilience import (
    DegradedModeController,
    OverrunWatchdog,
    RetryPolicy,
)
from repro.faults.injectors import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.flightrec import FlightRecorder
from repro.obs.profile import NullProfile
from repro.obs.report import RunReport
from repro.simkernel.time_units import MSEC, SEC
from repro.trading.network import NetworkModel
from repro.trading.system import RealTimeTradingSystem

#: probe topics the campaign counts per scenario.
_COUNTED_TOPICS = (
    "fault.*",
    "degrade.*",
    "rtseed.job_abort",
    "rtseed.discard",
    "trading.fetch_retry",
    "trading.broker_error",
)


def _signal_storm(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("signal_drop", start=0.25 * horizon,
                      end=0.60 * horizon, probability=0.5),
            FaultSpec("signal_delay", start=0.25 * horizon,
                      end=0.60 * horizon, probability=0.3,
                      delay=3 * MSEC),
            FaultSpec("spurious_wakeup", probability=0.2,
                      delay=0.5 * MSEC),
        ],
        seed=seed, name="signal_storm",
    )


def _timer_drift(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("timer_drift", start=0.2 * horizon,
                      end=0.7 * horizon, probability=0.6,
                      skew=4 * MSEC),
        ],
        seed=seed, name="timer_drift",
    )


def _net_timeouts(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("net_timeout", start=0.2 * horizon,
                      end=0.8 * horizon, probability=0.35,
                      timeout=120 * MSEC),
        ],
        seed=seed, name="net_timeouts",
    )


def _feed_outage(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("feed_gap", start=0.30 * horizon,
                      end=0.50 * horizon, probability=0.5),
            FaultSpec("feed_stale", start=0.50 * horizon,
                      end=0.70 * horizon, probability=0.3),
        ],
        seed=seed, name="feed_outage",
    )


def _broker_flap(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("broker_reject", start=0.2 * horizon,
                      end=0.5 * horizon, probability=0.4),
            FaultSpec("broker_disconnect", start=0.5 * horizon,
                      end=0.8 * horizon, probability=0.4),
        ],
        seed=seed, name="broker_flap",
    )


def _cpu_stall(horizon, seed):
    return FaultPlan(
        [
            FaultSpec("cpu_stall", start=0.3 * horizon,
                      end=0.6 * horizon, factor=3.0),
        ],
        seed=seed, name="cpu_stall",
    )


def _overload_degrade(horizon, seed):
    # Throttle the mandatory thread's core hard enough that jobs blow
    # through their deadlines, driving the controller into degraded
    # mode; the restore at window end lets it recover measurably.
    return FaultPlan(
        [
            FaultSpec("core_throttle", start=0.25 * horizon,
                      end=0.50 * horizon, factor=0.05, cores=[0]),
        ],
        seed=seed, name="overload_degrade",
    )


#: The canned scenario matrix: plan factory + hardening configuration.
SCENARIOS = {
    "baseline": {
        "description": "no faults, no hardening — the parity reference",
        "plan": lambda horizon, seed: FaultPlan([], seed=seed,
                                                name="baseline"),
    },
    "signal_storm": {
        "description": "dropped/late SIGALRMs + spurious wakeups; the "
                       "overrun watchdog backstops lost terminations",
        "plan": _signal_storm,
        "watchdog": True,
        # tight OD so the termination path (and thus SIGALRM traffic)
        # is exercised every job
        "system": {"optional_deadline": 150 * MSEC},
    },
    "timer_drift": {
        "description": "optional-deadline timers fire late",
        "plan": _timer_drift,
        "watchdog": True,
        "system": {"optional_deadline": 150 * MSEC},
    },
    "net_timeouts": {
        "description": "market-data fetch timeouts, retried within the "
                       "deadline budget",
        "plan": _net_timeouts,
        "network": True,
        "retry": True,
    },
    "feed_outage": {
        "description": "feed gaps then stale quotes",
        "plan": _feed_outage,
    },
    "broker_flap": {
        "description": "broker rejects then disconnects",
        "plan": _broker_flap,
    },
    "cpu_stall": {
        "description": "transient 3x micro-cost stall on every CPU",
        "plan": _cpu_stall,
        "watchdog": True,
    },
    "overload_degrade": {
        "description": "core-0 throttle forces deadline misses; "
                       "admission control sheds optional parts and "
                       "recovers after the window",
        "plan": _overload_degrade,
        "watchdog": True,
        "degrade": True,
    },
}


def run_scenario(name, n_seconds=30, seed=0, flight_dir=None,
                 profile=None, _sabotage=None):
    """Run one canned scenario; returns its (JSON-ready) report dict.

    :param flight_dir: when set, a
        :class:`~repro.obs.flightrec.FlightRecorder` rides along
        passively and dumps its ring into this directory at every
        failure edge (invariant violation, degraded-mode entry,
        watchdog fire).
    :param profile: optional
        :class:`~repro.obs.profile.WallClockProfile` — setup and run
        are timed under ``faults.<scenario>.setup`` / ``.run``.
        Wall-clock numbers never enter the returned report (it must
        stay byte-deterministic).
    :param _sabotage: test hook — ``f(kernel)`` called after setup,
        before the run; used to plant invariant violations for
        flight-recorder smoke tests.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {sorted(SCENARIOS)}"
        )
    if profile is None:
        profile = NullProfile()
    config = SCENARIOS[name]
    horizon = n_seconds * SEC
    plan = config["plan"](horizon, seed)
    injector = FaultInjector(plan)

    with profile.section(f"faults.{name}.setup"):
        network = None
        if config.get("network"):
            network = injector.wrap_network(NetworkModel(seed=seed))
        retry = RetryPolicy(max_attempts=3, backoff=5 * MSEC,
                            reserve=100 * MSEC) if config.get("retry") else None
        watchdog = OverrunWatchdog(grace=5 * MSEC) \
            if config.get("watchdog") else None
        degrade = DegradedModeController(enter_after=3, exit_after=2) \
            if config.get("degrade") else None

        system = RealTimeTradingSystem(
            n_seconds=n_seconds, seed=seed, network=network,
            retry_policy=retry, watchdog=watchdog, degrade=degrade,
            **config.get("system", {}),
        )
        task = system.task
        task.feed = injector.wrap_feed(task.feed)
        task.broker = injector.wrap_broker(task.broker)
        kernel = system.middleware.kernel

        events = {}

        def count_event(topic, _time, _data):
            events[topic] = events.get(topic, 0) + 1

        kernel.probes.subscribe(count_event, topics=_COUNTED_TOPICS)
        recorder = FlightRecorder.attach(kernel, dump_dir=flight_dir,
                                         seed=seed)
        recorder.degrade = degrade
        injector.attach(kernel)
        if _sabotage is not None:
            _sabotage(kernel)

    with profile.section(f"faults.{name}.run"):
        report = system.run()
    probes = report.task_result.probes
    misses = len(report.task_result.deadline_misses)
    summary = report.summary()

    result = {
        "scenario": name,
        "description": config["description"],
        "seed": seed,
        "n_seconds": n_seconds,
        "plan": plan.to_dict(),
        "injected": dict(injector.counts),
        "events": events,
        "jobs": len(probes),
        "deadline_misses": misses,
        "miss_ratio": misses / len(probes) if probes else 0.0,
        "aborted_jobs": sum(1 for p in probes if p.aborted),
        "qos_ms": summary["qos_ms"],
        "trades": summary["trades"],
        "rejected": summary["rejected"],
        "equity": summary["equity"],
        "broker_failures": len(task.broker_failures),
        "run_report": RunReport.collect(
            kernel, injector=injector, watchdog=watchdog,
            degrade=degrade, include_wallclock=False,
        ).to_dict(),
    }
    if watchdog is not None:
        result["watchdog_fires"] = len(watchdog.fired)
    if degrade is not None:
        result["degraded"] = {
            "episodes": len(degrade.episodes),
            "shed_jobs": degrade.shed_jobs,
            "recovery_latency_ms": [
                latency / MSEC for latency in degrade.recovery_latencies
            ],
        }
    return result


def assemble_campaign(names, n_seconds, seed, results):
    """Build the campaign document from per-scenario result dicts.

    Shared by the serial sweep (:func:`run_campaign`) and the farmed
    one (``repro.farm.farm_campaign``) so both emit byte-identical
    reports for the same scenario results.  The top-level
    ``run_report`` merges every scenario's per-run telemetry
    (:meth:`repro.obs.report.RunReport.merge`).
    """
    scenarios = dict(zip(names, results))
    document = {
        "campaign": "rtseed-resilience",
        "seed": seed,
        "n_seconds": n_seconds,
        "scenarios": scenarios,
    }
    run_reports = [result["run_report"] for result in results
                   if "run_report" in result]
    if run_reports:
        document["run_report"] = RunReport.merge(run_reports).to_dict()
    return document


def run_campaign(scenarios=None, n_seconds=30, seed=0, flight_dir=None,
                 profile=None):
    """Sweep ``scenarios`` (default: all) into one resilience report.

    ``flight_dir`` and ``profile`` are forwarded to every
    :func:`run_scenario`; neither affects the report bytes.
    """
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    results = [
        run_scenario(name, n_seconds=n_seconds, seed=seed,
                     flight_dir=flight_dir, profile=profile)
        for name in names
    ]
    return assemble_campaign(names, n_seconds, seed, results)


def render_report(report):
    """Serialize a campaign report deterministically (byte-stable)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
