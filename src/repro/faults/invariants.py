"""Kernel/run-queue invariant checks.

Fault injection deliberately perturbs the kernel model (dropped
signals, skewed timers, spurious wakeups, repriced cores).  After every
injected fault the scheduler state must still be *self-consistent* —
the fault changes what happens, never the bookkeeping.  A violation
here means the simulation model broke, so it raises
:class:`~repro.simkernel.errors.InvariantViolationError` (a
:class:`~repro.simkernel.errors.SimulationError`, not an injected
fault): nothing catches it, the run dies loudly.
"""

from repro.simkernel.errors import InvariantViolationError
from repro.simkernel.thread import SchedPolicy, ThreadState


def _in_ready_queue(kernel, thread):
    if thread.policy is SchedPolicy.FIFO:
        return thread in kernel.runqueues[thread.cpu]
    return thread in kernel.other_queues[thread.cpu]


def _check_wait_queues(kernel, violations):
    """Every queued waiter must be a live BLOCKED thread pointing back
    at the object it queues on.

    The converse (BLOCKED implies queued) is deliberately *not* checked:
    a woken waiter is legitimately absent from the queue while its
    wakeup latency elapses (the in-transit state between
    ``_wake_cond_waiter`` and the delayed ``_make_ready``).
    """
    wait_objects = []
    seen = set()
    for thread in kernel.threads:
        blocked_on = thread.blocked_on
        if blocked_on is None or isinstance(blocked_on, tuple):
            continue
        if hasattr(blocked_on, "waiters") and id(blocked_on) not in seen:
            seen.add(id(blocked_on))
            wait_objects.append(blocked_on)
    for obj in wait_objects:
        name = getattr(obj, "name", repr(obj))
        for entry in obj.waiters:
            target = entry[0] if isinstance(entry, tuple) else entry
            if not target.alive:
                violations.append(
                    f"{name}: dead thread {target.name} still queued"
                )
            elif target.state is not ThreadState.BLOCKED:
                violations.append(
                    f"{name}: queued waiter {target.name} is "
                    f"{target.state.value}, not blocked"
                )
            elif target.blocked_on is not obj:
                violations.append(
                    f"{name}: queued waiter {target.name} claims to "
                    f"block on {target.blocked_on!r}"
                )


def collect_violations(kernel):
    """Every invariant that does not currently hold, as messages."""
    violations = []

    # current[] <-> thread-state consistency
    for cpu, thread in enumerate(kernel.current):
        if thread is None:
            continue
        if thread.state is not ThreadState.RUNNING:
            violations.append(
                f"cpu {cpu}: current thread {thread.name} is "
                f"{thread.state.value}, not running"
            )
        if thread.cpu != cpu:
            violations.append(
                f"cpu {cpu}: current thread {thread.name} claims cpu "
                f"{thread.cpu}"
            )

    for thread in kernel.threads:
        state = thread.state
        if state is ThreadState.NEW:
            continue
        enqueued = _in_ready_queue(kernel, thread)
        if state is ThreadState.RUNNING:
            if kernel.current[thread.cpu] is not thread:
                violations.append(
                    f"{thread.name}: RUNNING but not current on cpu "
                    f"{thread.cpu}"
                )
            if enqueued:
                violations.append(
                    f"{thread.name}: RUNNING yet still in a ready queue"
                )
        elif state is ThreadState.READY:
            if not enqueued:
                violations.append(
                    f"{thread.name}: READY but missing from cpu "
                    f"{thread.cpu}'s ready queue"
                )
        elif state is ThreadState.BLOCKED:
            if enqueued:
                violations.append(
                    f"{thread.name}: BLOCKED yet still in a ready queue"
                )
        elif state is ThreadState.TERMINATED:
            if enqueued:
                violations.append(
                    f"{thread.name}: TERMINATED yet still in a ready "
                    f"queue"
                )

    _check_wait_queues(kernel, violations)

    next_time = kernel.engine.peek_time()
    if next_time is not None and next_time < kernel.engine.now:
        violations.append(
            f"engine: next event at {next_time} behind clock "
            f"{kernel.engine.now}"
        )
    return violations


def check_kernel_invariants(kernel):
    """Raise :class:`InvariantViolationError` unless every invariant
    holds; returns None on success.

    If a :class:`~repro.obs.flightrec.FlightRecorder` is registered on
    the kernel's probe bus, its ring is snapshotted (and dumped, when
    the recorder has a ``dump_dir``) *before* raising, and the snapshot
    rides on the exception as ``error.flight`` — the events leading up
    to the violation survive the crash.
    """
    violations = collect_violations(kernel)
    if violations:
        error = InvariantViolationError(
            f"{len(violations)} kernel invariant(s) violated at "
            f"t={kernel.engine.now:.0f}: " + "; ".join(violations),
            violations=violations,
        )
        flight = getattr(kernel.probes, "flight", None)
        if flight is not None:
            error.flight = flight.record_failure("invariant_violation")
        raise error
