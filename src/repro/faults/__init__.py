"""Seeded, simulated-time fault injection + resilience campaigns.

The reproduction's robustness subsystem: declarative
:class:`~repro.faults.plan.FaultPlan`\\ s
(:mod:`repro.faults.plan`) drive a
:class:`~repro.faults.injectors.FaultInjector` hooked into the
simulated kernel, the hardware overhead model, and the trading layer
(:mod:`repro.faults.injectors`); every injected fault is published as a
``fault.*`` probe event and followed by a kernel invariant check
(:mod:`repro.faults.invariants`).  :mod:`repro.faults.campaign` sweeps
canned scenarios through the end-to-end trading system and emits a
deterministic JSON resilience report (``repro faults`` on the CLI).

The hardening the campaigns exercise lives with the code it protects:
:mod:`repro.core.resilience` (retry-within-budget, overrun watchdog,
degraded mode) and the trading layer's broker-failure tolerance.
"""

from repro.faults.campaign import (
    SCENARIOS,
    render_report,
    run_campaign,
    run_scenario,
)
from repro.faults.injectors import (
    BrokerFaultProxy,
    FaultInjector,
    FeedFaultProxy,
    NetworkFaultProxy,
)
from repro.faults.invariants import check_kernel_invariants, collect_violations
from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec, no_faults

__all__ = [
    "SCENARIOS",
    "render_report",
    "run_campaign",
    "run_scenario",
    "BrokerFaultProxy",
    "FaultInjector",
    "FeedFaultProxy",
    "NetworkFaultProxy",
    "check_kernel_invariants",
    "collect_violations",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "no_faults",
]
