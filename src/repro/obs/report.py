"""Unified run report: every telemetry source in one JSON document.

The observability subsystem grew one collector per concern — simulated
:class:`~repro.obs.metrics.SchedulerMetrics`, wall-clock
:class:`~repro.obs.profile.WallClockProfile`, the engine/queue counters
(``Engine.counters`` / queue ``counters``), fault-injection and
degraded-mode stats.  :class:`RunReport` merges whichever of those a run
used into one deterministic JSON document (stable key order; wall-clock
data is opt-out via ``include_wallclock=False`` so byte-stable reports
remain available to CI diffing).

Emitted by ``repro report`` and consumed by ``tools/bench_report.py``;
see ``docs/OBSERVABILITY.md``.
"""

import json

#: Report document schema tag.
RUN_REPORT_SCHEMA = "rtseed-run-report/1"


class RunReport:
    """Assembles the merged report; sections are plain JSON-ready dicts.

    Use :meth:`collect` for the standard assembly from a finished run;
    the instance is also buildable piecewise (``report.sections[...] =
    ...``) for callers with unusual section sources.
    """

    def __init__(self):
        self.sections = {"schema": RUN_REPORT_SCHEMA}

    @classmethod
    def collect(cls, kernel, metrics=None, profile=None, injector=None,
                watchdog=None, degrade=None, include_wallclock=True):
        """Build the report from a finished run's collaborators.

        :param kernel: the simulated kernel (engine + queue counters,
            engine backend name).
        :param metrics: optional
            :class:`~repro.obs.metrics.SchedulerMetrics` (or a bare
            registry) — its sorted snapshot becomes the ``metrics``
            section.
        :param profile: optional
            :class:`~repro.obs.profile.WallClockProfile`; skipped when
            ``include_wallclock`` is false (wall-clock data breaks
            byte-determinism).
        :param injector: optional
            :class:`~repro.faults.injectors.FaultInjector` (injected
            fault counts).
        :param watchdog: optional
            :class:`~repro.core.resilience.OverrunWatchdog`.
        :param degrade: optional
            :class:`~repro.core.resilience.DegradedModeController`.
        """
        report = cls()
        sections = report.sections
        sections["engine"] = {
            "backend": getattr(kernel.backend, "name", "unknown"),
            "now": kernel.engine.now,
            "counters": kernel.engine.counters(),
        }
        queues = {}
        for cpu, runqueue in enumerate(kernel.runqueues):
            if hasattr(runqueue, "counters"):
                queues[f"cpu{cpu}"] = runqueue.counters()
        sections["queues"] = queues
        if metrics is not None:
            registry = getattr(metrics, "registry", metrics)
            sections["metrics"] = registry.snapshot()
        fault_stats = {}
        if injector is not None:
            fault_stats["injected"] = dict(injector.counts)
        if watchdog is not None:
            fault_stats["watchdog_fires"] = len(watchdog.fired)
        if degrade is not None:
            fault_stats["degraded"] = {
                "active": degrade.degraded,
                "episodes": len(degrade.episodes),
                "shed_jobs": degrade.shed_jobs,
            }
        if fault_stats:
            sections["faults"] = fault_stats
        if profile is not None and include_wallclock:
            sections["wallclock"] = profile.report()
        return report

    def to_dict(self):
        return dict(self.sections)

    def to_json(self):
        """Deterministic rendering: sorted keys, trailing newline."""
        return json.dumps(self.sections, sort_keys=True, indent=2) + "\n"

    def __repr__(self):
        names = sorted(k for k in self.sections if k != "schema")
        return f"<RunReport sections={names}>"
