"""Unified run report: every telemetry source in one JSON document.

The observability subsystem grew one collector per concern — simulated
:class:`~repro.obs.metrics.SchedulerMetrics`, wall-clock
:class:`~repro.obs.profile.WallClockProfile`, the engine/queue counters
(``Engine.counters`` / queue ``counters``), fault-injection and
degraded-mode stats.  :class:`RunReport` merges whichever of those a run
used into one deterministic JSON document (stable key order; wall-clock
data is opt-out via ``include_wallclock=False`` so byte-stable reports
remain available to CI diffing).

Emitted by ``repro report`` and consumed by ``tools/bench_report.py``;
see ``docs/OBSERVABILITY.md``.
"""

import json

#: Report document schema tag.
RUN_REPORT_SCHEMA = "rtseed-run-report/1"


class RunReport:
    """Assembles the merged report; sections are plain JSON-ready dicts.

    Use :meth:`collect` for the standard assembly from a finished run;
    the instance is also buildable piecewise (``report.sections[...] =
    ...``) for callers with unusual section sources.
    """

    def __init__(self):
        self.sections = {"schema": RUN_REPORT_SCHEMA}

    @classmethod
    def collect(cls, kernel, metrics=None, profile=None, injector=None,
                watchdog=None, degrade=None, include_wallclock=True):
        """Build the report from a finished run's collaborators.

        :param kernel: the simulated kernel (engine + queue counters,
            engine backend name).
        :param metrics: optional
            :class:`~repro.obs.metrics.SchedulerMetrics` (or a bare
            registry) — its sorted snapshot becomes the ``metrics``
            section.
        :param profile: optional
            :class:`~repro.obs.profile.WallClockProfile`; skipped when
            ``include_wallclock`` is false (wall-clock data breaks
            byte-determinism).
        :param injector: optional
            :class:`~repro.faults.injectors.FaultInjector` (injected
            fault counts).
        :param watchdog: optional
            :class:`~repro.core.resilience.OverrunWatchdog`.
        :param degrade: optional
            :class:`~repro.core.resilience.DegradedModeController`.
        """
        report = cls()
        sections = report.sections
        sections["engine"] = {
            "backend": getattr(kernel.backend, "name", "unknown"),
            "now": kernel.engine.now,
            "counters": kernel.engine.counters(),
        }
        queues = {}
        for cpu, runqueue in enumerate(kernel.runqueues):
            if hasattr(runqueue, "counters"):
                queues[f"cpu{cpu}"] = runqueue.counters()
        sections["queues"] = queues
        if metrics is not None:
            registry = getattr(metrics, "registry", metrics)
            sections["metrics"] = registry.snapshot()
        fault_stats = {}
        if injector is not None:
            fault_stats["injected"] = dict(injector.counts)
        if watchdog is not None:
            fault_stats["watchdog_fires"] = len(watchdog.fired)
        if degrade is not None:
            fault_stats["degraded"] = {
                "active": degrade.degraded,
                "episodes": len(degrade.episodes),
                "shed_jobs": degrade.shed_jobs,
            }
        if fault_stats:
            sections["faults"] = fault_stats
        if profile is not None and include_wallclock:
            sections["wallclock"] = profile.report()
        return report

    @classmethod
    def merge(cls, reports):
        """Shard-aware merge of per-shard run reports into one document.

        The scenario farm (``repro.farm``) executes independent kernels
        in separate processes; each contributes one
        ``rtseed-run-report/1`` dict (or :class:`RunReport`).  The merge
        sums what is additive and takes the peak of what is a
        high-water mark:

        * ``engine`` — counters summed key-by-key (``peak_heap_size``
          by max); ``now`` becomes the *total* simulated time across
          shards; ``backend`` stays the common name or ``"mixed"``;
        * ``queues`` — per-label (``cpu0`` ...) counter sums, ``peak_*``
          and ``level_peaks`` by max;
        * ``faults`` — injected counts, watchdog fires, degraded
          episode/shed totals summed; ``degraded.active`` is true if
          any shard ended degraded.

        Per-shard-only sections (``metrics`` histograms, ``wallclock``)
        are dropped: quantiles and wall time do not merge additively,
        and wall-clock data must never enter deterministic bytes.  The
        merged document records ``shards`` so consumers can tell it
        from a single-run report.
        """
        documents = [report.to_dict() if isinstance(report, RunReport)
                     else report for report in reports]
        merged = cls()
        merged.sections["shards"] = len(documents)
        engines = [doc["engine"] for doc in documents if "engine" in doc]
        if engines:
            backends = sorted({engine["backend"] for engine in engines})
            merged.sections["engine"] = {
                "backend": backends[0] if len(backends) == 1 else "mixed",
                "now": sum(engine["now"] for engine in engines),
                "counters": _merge_counters(
                    [engine["counters"] for engine in engines]
                ),
            }
        queue_sections = [doc["queues"] for doc in documents
                          if "queues" in doc]
        if queue_sections:
            labels = sorted({label for queues in queue_sections
                             for label in queues})
            merged.sections["queues"] = {
                label: _merge_counters(
                    [queues[label] for queues in queue_sections
                     if label in queues]
                )
                for label in labels
            }
        fault_sections = [doc["faults"] for doc in documents
                          if "faults" in doc]
        if fault_sections:
            merged.sections["faults"] = _merge_faults(fault_sections)
        return merged

    def to_dict(self):
        return dict(self.sections)

    def to_json(self):
        """Deterministic rendering: sorted keys, trailing newline."""
        return json.dumps(self.sections, sort_keys=True, indent=2) + "\n"

    def __repr__(self):
        names = sorted(k for k in self.sections if k != "schema")
        return f"<RunReport sections={names}>"


#: Counter keys that are high-water marks: merged by max, not sum.
_PEAK_KEYS = frozenset({"peak_heap_size", "peak_depth", "level_peaks"})

#: Counter keys that identify rather than count: kept as-is (they are
#: equal across shards for the same label).
_IDENTITY_KEYS = frozenset({"cpu"})


def _merge_counters(dicts, peak=False):
    """Recursively merge counter dicts: sum counts, max the peaks."""
    merged = {}
    keys = sorted({key for entry in dicts for key in entry})
    for key in keys:
        values = [entry[key] for entry in dicts if key in entry]
        if isinstance(values[0], dict):
            merged[key] = _merge_counters(values,
                                          peak=peak or key in _PEAK_KEYS)
        elif key in _IDENTITY_KEYS:
            merged[key] = values[0]
        elif peak or key in _PEAK_KEYS:
            merged[key] = max(values)
        else:
            merged[key] = sum(values)
    return merged


def _merge_faults(sections):
    """Sum the fault/resilience stats across shards."""
    merged = {}
    injected = [section["injected"] for section in sections
                if "injected" in section]
    if injected:
        merged["injected"] = _merge_counters(injected)
    fires = [section["watchdog_fires"] for section in sections
             if "watchdog_fires" in section]
    if fires:
        merged["watchdog_fires"] = sum(fires)
    degraded = [section["degraded"] for section in sections
                if "degraded" in section]
    if degraded:
        merged["degraded"] = {
            "active": any(entry["active"] for entry in degraded),
            "episodes": sum(entry["episodes"] for entry in degraded),
            "shed_jobs": sum(entry["shed_jobs"] for entry in degraded),
        }
    return merged
