"""``repro.obs`` — the cross-layer observability subsystem.

One probe bus, many subscribers::

    from repro.obs import ChromeTraceExporter, SchedulerMetrics
    from repro.simkernel.trace import Tracer

    middleware = RTSeed(...)
    kernel = middleware.kernel
    exporter = ChromeTraceExporter.attach(kernel)   # Perfetto trace
    metrics = SchedulerMetrics.attach(kernel)       # quantile registry
    tracer = Tracer.attach(kernel)                  # ASCII Gantt
    middleware.run()
    exporter.write("trace.json")                    # load in Perfetto
    print(metrics.format())

With *no* subscriber attached the probe sites cost one attribute test
each — the default run is effectively unobserved.  See
``docs/OBSERVABILITY.md`` for the probe-site table and workflows.
"""

from repro.obs.bus import PROBE_SITES, ProbeBus
from repro.obs.flightrec import (
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    kernel_state_summary,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport
from repro.obs.export import (
    ChromeTraceExporter,
    JsonlExporter,
    TraceValidationError,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SchedulerMetrics,
)
from repro.obs.profile import NullProfile, WallClockProfile

__all__ = [
    "PROBE_SITES",
    "ProbeBus",
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
    "kernel_state_summary",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "ChromeTraceExporter",
    "JsonlExporter",
    "TraceValidationError",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SchedulerMetrics",
    "NullProfile",
    "WallClockProfile",
]
