"""Metrics keyed on simulated time: counters, gauges, histograms.

Two layers:

* the generic :class:`MetricsRegistry` (counters / gauges /
  fixed-bucket histograms with p50/p95/p99/max quantiles and a
  ``snapshot()`` dict) — usable standalone;
* :class:`SchedulerMetrics`, a :class:`~repro.obs.bus.ProbeBus`
  subscriber that populates a registry with the reproduction's standard
  observables: dispatch/preemption/migration counts, wake-up and signal
  latencies, and — per task — response times, tardiness, QoS, and the
  paper's Δm/Δb/Δs/Δe overheads (Figs. 10–13) plus termination
  latencies.

All durations are recorded in *simulated nanoseconds*; quantile
summaries additionally report microseconds for the Δ-overheads so they
read directly against the paper's figures.
"""

from bisect import bisect_left, insort

from repro.simkernel.time_units import NSEC_PER_USEC

#: Default histogram buckets: 1-2-5 decades from 100 ns to 10 s, in ns.
#: Wide enough for everything from per-signal costs to response times.
DEFAULT_BUCKETS = tuple(
    mantissa * 10 ** exponent
    for exponent in range(2, 10)
    for mantissa in (1, 2, 5)
) + (10 ** 10,)

#: Raw-sample retention cap per histogram: below it quantiles are exact
#: (sorted-sample nearest-rank), above it they interpolate from buckets.
DEFAULT_SAMPLE_CAP = 65536


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def __repr__(self):
        return f"<Counter {self.value}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return f"<Gauge {self.value}>"


class Histogram:
    """Fixed-bucket histogram with exact small-sample quantiles.

    :param buckets: ascending upper bucket bounds; an implicit +inf
        bucket catches the rest.
    :param sample_cap: raw samples kept (sorted) for exact quantiles;
        beyond the cap quantiles fall back to linear interpolation
        within the matching bucket, Prometheus-style.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total",
                 "min", "max", "_samples", "_sample_cap")

    def __init__(self, buckets=DEFAULT_BUCKETS, sample_cap=DEFAULT_SAMPLE_CAP):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []
        self._sample_cap = sample_cap

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        if len(self._samples) < self._sample_cap:
            insort(self._samples, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    @property
    def exact(self):
        """True while every observation is retained (quantiles exact)."""
        return len(self._samples) == self.count

    def quantile(self, q):
        """The q-quantile (0 < q <= 1), nearest-rank on the retained
        samples; bucket-interpolated once the sample cap overflowed."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return None
        if self.exact:
            rank = max(int(q * self.count + 0.999999) - 1, 0)
            return self._samples[rank]
        return self._interpolate(q)

    def _interpolate(self, q):
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (self.buckets[index] if index < len(self.buckets)
                     else self.max)
            if cumulative + bucket_count >= target and bucket_count:
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
            lower = upper
        return self.max

    def summary(self, scale=1.0):
        """Dict summary; ``scale`` divides every value (e.g. 1000 for
        ns -> us)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean / scale,
            "min": self.min / scale,
            "max": self.max / scale,
            "p50": self.quantile(0.50) / scale,
            "p95": self.quantile(0.95) / scale,
            "p99": self.quantile(0.99) / scale,
        }

    def __repr__(self):
        return f"<Histogram n={self.count} mean={self.mean}>"


class MetricsRegistry:
    """Named counters / gauges / histograms with a nested snapshot.

    Names are dotted strings; per-entity series use ``name[label]``
    (e.g. ``"rtseed.response_time[tau1]"``) — :meth:`snapshot` groups
    labelled series under their family name.

    :param clock: optional object exposing ``.now``; the snapshot then
        records the simulated time it was taken at.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    @staticmethod
    def _key(name, label):
        return f"{name}[{label}]" if label is not None else name

    def counter(self, name, label=None):
        key = self._key(name, label)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name, label=None):
        key = self._key(name, label)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name, label=None, buckets=DEFAULT_BUCKETS):
        key = self._key(name, label)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(buckets=buckets)
        return histogram

    def snapshot(self, scale=1.0):
        """Plain-dict snapshot of every metric (JSON-serializable).

        Histogram values are divided by ``scale`` (durations are stored
        in simulated ns; pass ``1000`` to read microseconds).
        """
        snap = {
            "counters": {
                key: counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.summary(scale=scale)
                for key, histogram in sorted(self._histograms.items())
            },
        }
        if self.clock is not None:
            snap["now"] = self.clock.now
        return snap


class SchedulerMetrics:
    """Probe-bus subscriber filling a registry with standard observables.

    Usage::

        metrics = SchedulerMetrics.attach(kernel)
        ... run ...
        snap = metrics.snapshot()
        snap["histograms"]["rtseed.response_time[tau1]"]["p99"]

    :param registry: a :class:`MetricsRegistry`; created if omitted.
    :param include_engine: also count raw DES event pops and heap
        compactions (noisy; off by default).
    """

    #: Topics this subscriber consumes.
    TOPICS = ("kernel.*", "rtseed.*", "termination.*", "trading.*",
              "engine.*")

    def __init__(self, registry=None, include_engine=False):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.include_engine = include_engine
        self._ready_since = {}
        self._bus = None

    @classmethod
    def attach(cls, kernel, registry=None, include_engine=False):
        """Create a collector and subscribe it to ``kernel.probes``."""
        metrics = cls(registry=registry, include_engine=include_engine)
        if metrics.registry.clock is None:
            metrics.registry.clock = kernel.engine
        metrics._bus = kernel.probes
        kernel.probes.subscribe(metrics, topics=cls.TOPICS)
        return metrics

    def detach(self):
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def snapshot(self, scale=1.0):
        return self.registry.snapshot(scale=scale)

    # -- the subscriber ------------------------------------------------

    def __call__(self, topic, time, data):
        handler = self._HANDLERS.get(topic)
        if handler is not None:
            handler(self, time, data)

    def _on_ready(self, time, data):
        self._ready_since[data["tid"]] = time

    def _on_dispatch(self, time, data):
        registry = self.registry
        registry.counter("kernel.dispatches").inc()
        ready_at = self._ready_since.pop(data["tid"], None)
        if ready_at is not None:
            registry.histogram("kernel.dispatch_latency").observe(
                time - ready_at
            )

    def _on_preempt(self, _time, _data):
        self.registry.counter("kernel.preemptions").inc()

    def _on_migrate(self, _time, _data):
        self.registry.counter("kernel.migrations").inc()

    def _on_signal_deliver(self, _time, data):
        registry = self.registry
        registry.counter("kernel.signals_delivered").inc()
        latency = data.get("latency")
        if latency is not None:
            registry.histogram("kernel.signal_latency").observe(latency)

    def _on_timer_expire(self, _time, _data):
        self.registry.counter("kernel.timer_expirations").inc()

    def _on_job_done(self, _time, data):
        registry = self.registry
        task = data["task"]
        registry.counter("rtseed.jobs", task).inc()
        registry.histogram("rtseed.response_time", task).observe(
            data["response"]
        )
        if data["tardiness"] > 0:
            registry.counter("rtseed.deadline_misses", task).inc()
            registry.histogram("rtseed.tardiness", task).observe(
                data["tardiness"]
            )
        registry.histogram("rtseed.qos", task).observe(data["qos"])
        for which in "mbse":
            delta = data.get(f"delta_{which}")
            if delta is not None:
                registry.histogram(f"rtseed.delta_{which}", task).observe(
                    delta
                )

    def _on_optional_end(self, _time, data):
        self.registry.counter(
            f"rtseed.optional_{data['fate']}", data["task"]
        ).inc()

    def _on_discard(self, _time, data):
        self.registry.counter(
            "rtseed.optional_discarded", data["task"]
        ).inc(data["n_parts"])

    def _on_terminated(self, _time, data):
        self.registry.histogram("termination.latency").observe(
            data["overrun"]
        )

    def _on_trading_order(self, time, data):
        registry = self.registry
        registry.counter("trading.orders").inc()
        registry.histogram("trading.tick_to_order").observe(
            time - data["release"]
        )

    def _on_engine_pop(self, _time, _data):
        if self.include_engine:
            self.registry.counter("engine.events").inc()

    def _on_engine_compact(self, _time, data):
        registry = self.registry
        registry.counter("engine.compactions").inc()
        registry.counter("engine.swept_events").inc(data["swept"])

    _HANDLERS = {
        "kernel.ready": _on_ready,
        "kernel.dispatch": _on_dispatch,
        "kernel.preempt": _on_preempt,
        "kernel.migrate": _on_migrate,
        "kernel.signal_deliver": _on_signal_deliver,
        "kernel.timer_expire": _on_timer_expire,
        "rtseed.job_done": _on_job_done,
        "rtseed.optional_end": _on_optional_end,
        "rtseed.discard": _on_discard,
        "termination.terminated": _on_terminated,
        "trading.order": _on_trading_order,
        "engine.event_pop": _on_engine_pop,
        "engine.compact": _on_engine_compact,
    }

    # -- formatting ----------------------------------------------------

    def format(self):
        """Human-readable snapshot (counters + quantile table)."""
        snap = self.snapshot()
        lines = ["counters:"]
        for key, value in snap["counters"].items():
            lines.append(f"  {key:42s} {value}")
        lines.append("histograms [us]:")
        header = (f"  {'name':42s} {'count':>6s} {'mean':>10s} "
                  f"{'p50':>10s} {'p95':>10s} {'p99':>10s} {'max':>10s}")
        lines.append(header)
        for key, summary in snap["histograms"].items():
            if summary["count"] == 0:
                continue
            lines.append(
                f"  {key:42s} {summary['count']:>6d} "
                + " ".join(
                    f"{summary[field] / NSEC_PER_USEC:>10.1f}"
                    for field in ("mean", "p50", "p95", "p99", "max")
                )
            )
        return "\n".join(lines)
