"""The probe bus: cross-layer observability fan-out.

Every instrumented layer (the DES engine, the ready queues, the
simulated kernel, the RT-Seed middleware, the trading application)
publishes *probe events* to one :class:`ProbeBus`.  Subscribers —
tracers, metrics registries, trace exporters — attach to the bus, so
any number of them coexist on one run (the single-callback
``kernel.on_event`` hook could hold only one observer).

Design constraints, in order:

1. **Near-zero cost when idle.**  Probe sites guard on the single
   attribute read ``bus.active`` (kept in sync by subscribe /
   unsubscribe), so an unobserved run pays one boolean test per site
   and never builds a payload.
2. **Simulated-time stamping.**  The bus stamps every event with
   ``clock.now`` at publish, so probe sites never thread timestamps
   through and data-structure layers (ready queues) that have no clock
   of their own still emit correctly stamped events.
3. **Deterministic fan-out.**  Subscribers are called in subscription
   order; payloads are plain dicts of JSON-serializable values (names,
   tids, numbers — never live objects), which is what makes exported
   traces of a deterministic run byte-reproducible.

Topic names are dotted, ``<layer>.<event>`` (``kernel.dispatch``,
``rtseed.job_done``); subscriptions filter by exact topic or by a
``"layer.*"`` prefix pattern.  :data:`PROBE_SITES` documents every
topic published by the instrumented tree.
"""

#: Every probe topic published by the instrumented layers, with the
#: publishing module and payload fields (beyond the implicit timestamp).
#: Kept as data so the docs table and the tests cannot drift from the
#: code without failing.
PROBE_SITES = {
    # -- repro.engine.events -------------------------------------------
    "engine.event_pop": (
        "engine/events.py", "one DES event executed; fields: priority, seq"),
    "engine.compact": (
        "engine/events.py",
        "lazy-cancel heap compaction; fields: swept, survivors"),
    # -- repro.engine.readyqueue ---------------------------------------
    "rq.enqueue": (
        "engine/readyqueue.py",
        "item became ready; fields: cpu, prio (level queues), depth"),
    "rq.dequeue": (
        "engine/readyqueue.py",
        "item removed without dispatch; fields: cpu, prio, depth"),
    "rq.pop": (
        "engine/readyqueue.py",
        "most-urgent item popped for dispatch; fields: cpu, prio, depth"),
    # -- repro.simkernel.kernel (all carry thread, tid, cpu, prio) -----
    "kernel.spawn": ("simkernel/kernel.py", "thread registered"),
    "kernel.ready": ("simkernel/kernel.py", "thread became READY"),
    "kernel.dispatch": ("simkernel/kernel.py", "thread switched in"),
    "kernel.preempt": ("simkernel/kernel.py", "thread switched out, READY"),
    "kernel.block": ("simkernel/kernel.py", "thread blocked"),
    "kernel.yield": ("simkernel/kernel.py", "sched_yield: requeued at tail"),
    "kernel.thread_exit": ("simkernel/kernel.py", "thread terminated"),
    "kernel.sleep_expire": ("simkernel/kernel.py", "clock_nanosleep expiry"),
    "kernel.cond_signal": ("simkernel/kernel.py", "pthread_cond_signal"),
    "kernel.cond_broadcast": ("simkernel/kernel.py", "pthread_cond_broadcast"),
    "kernel.signal_post": (
        "simkernel/kernel.py", "signal posted; fields: signum"),
    "kernel.signal_blocked": (
        "simkernel/kernel.py", "signal queued against the mask"),
    "kernel.signal_deliver": (
        "simkernel/kernel.py",
        "unwind delivery; fields: signum, latency (post -> deliver ns)"),
    "kernel.timer_arm": (
        "simkernel/kernel.py", "one-shot timer armed; fields: timer, at"),
    "kernel.timer_disarm": (
        "simkernel/kernel.py", "timer stopped; fields: timer"),
    "kernel.timer_expire": (
        "simkernel/kernel.py",
        "timer fired; fields: timer, signum, expirations"),
    "kernel.setscheduler": (
        "simkernel/kernel.py",
        "sched_setscheduler; fields: old_prio, policy"),
    "kernel.migrate": (
        "simkernel/kernel.py",
        "affinity moved a thread; fields: from_cpu, to_cpu"),
    "kernel.prio_boost": (
        "simkernel/kernel.py",
        "priority inheritance raised a mutex owner; fields: old_prio, "
        "waiter"),
    "kernel.prio_restore": (
        "simkernel/kernel.py",
        "mutex release dropped an inherited boost; fields: old_prio"),
    # -- repro.sched.simulator (theory-level job lifecycle) ------------
    "sim.release": (
        "sched/simulator.py", "job released; fields: task, job, release"),
    "sim.mandatory_begin": (
        "sched/simulator.py", "mandatory part first scheduled"),
    "sim.mandatory_end": ("sched/simulator.py", "mandatory part done"),
    "sim.optional_begin": (
        "sched/simulator.py",
        "optional part first scheduled; fields: task, job, part"),
    "sim.optional_end": (
        "sched/simulator.py", "optional part ended; fields: part, fate"),
    "sim.discard": (
        "sched/simulator.py",
        "optional parts discarded (mandatory ran past OD); fields: "
        "n_parts"),
    "sim.windup_begin": (
        "sched/simulator.py", "wind-up part first scheduled"),
    "sim.windup_end": ("sched/simulator.py", "wind-up part done"),
    "sim.job_done": (
        "sched/simulator.py", "job complete; fields: task, job, met"),
    # -- repro.core.process / termination (Fig. 9 measurement points) --
    "rtseed.release": (
        "core/process.py", "job released; fields: task, job, release"),
    "rtseed.mandatory_begin": (
        "core/process.py", "mandatory part begins (the Δm point)"),
    "rtseed.mandatory_end": ("core/process.py", "mandatory part done"),
    "rtseed.signals_done": (
        "core/process.py",
        "all optional wake-ups sent; fields: delta_b (ns)"),
    "rtseed.optional_begin": (
        "core/process.py", "optional part begins; fields: task, part, job"),
    "rtseed.optional_end": (
        "core/process.py",
        "optional part ended; fields: fate, duration (ns)"),
    "rtseed.discard": (
        "core/process.py",
        "optional parts discarded (mandatory ran past OD)"),
    "rtseed.windup_begin": (
        "core/process.py", "wind-up begins (the Δe point)"),
    "rtseed.windup_end": ("core/process.py", "wind-up done"),
    "rtseed.job_done": (
        "core/process.py",
        "job complete; fields: response, tardiness, met, qos, "
        "delta_m/b/s/e (ns or None)"),
    "rtseed.job_abort": (
        "core/process.py",
        "mandatory part gave up within budget; fields: task, job, "
        "reason"),
    "termination.completed": (
        "core/termination.py",
        "optional body finished before OD; fields: strategy, duration"),
    "termination.terminated": (
        "core/termination.py",
        "optional body cut at/after OD; fields: strategy, overrun "
        "(ns past OD — the termination latency)"),
    # -- repro.trading.system ------------------------------------------
    "trading.decision": (
        "trading/system.py",
        "wind-up decision; fields: job, kind, confidence"),
    "trading.order": (
        "trading/system.py",
        "order submitted; fields: job, side, units, release "
        "(tick-to-order latency = timestamp - release)"),
    "trading.fetch_retry": (
        "trading/system.py",
        "fetch timed out, retrying within budget; fields: job, "
        "attempt, backoff"),
    "trading.broker_error": (
        "trading/system.py",
        "order lost to a broker fault; fields: job, side, reason"),
    # -- repro.core.resilience / process (degradation machinery) -------
    "degrade.enter": (
        "core/resilience.py",
        "degraded mode entered; fields: task, consecutive_misses"),
    "degrade.exit": (
        "core/resilience.py",
        "degraded mode cleared; fields: recovery_latency (ns)"),
    "degrade.shed": (
        "core/process.py",
        "optional parts shed while degraded; fields: task, job, "
        "n_parts"),
    "degrade.watchdog_fire": (
        "core/resilience.py",
        "overrun watchdog force-discarded a part; fields: task, job, "
        "part, overrun (ns)"),
    # -- repro.faults.injectors (every injected fault) -----------------
    "fault.signal_drop": (
        "faults/injectors.py",
        "posted signal silently lost; fields: thread, tid, signum"),
    "fault.signal_delay": (
        "faults/injectors.py",
        "posted signal deferred; fields: thread, tid, signum, delay"),
    "fault.timer_drift": (
        "faults/injectors.py",
        "timer expiry skewed late; fields: timer, skew, at"),
    "fault.spurious_wakeup": (
        "faults/injectors.py",
        "condvar waiter woken with no signal; fields: thread, tid, "
        "cond"),
    "fault.cpu_stall": (
        "faults/injectors.py",
        "micro-cost stall window began; fields: cpus, factor, until"),
    "fault.core_throttle": (
        "faults/injectors.py",
        "core throughput scaled down; fields: core, factor, until"),
    "fault.core_restore": (
        "faults/injectors.py",
        "throttled core restored; fields: core"),
    "fault.net_timeout": (
        "faults/injectors.py",
        "fetch attempt timed out; fields: job, attempt, timeout"),
    "fault.feed_gap": (
        "faults/injectors.py",
        "feed tick never arrived; fields: index"),
    "fault.feed_stale": (
        "faults/injectors.py",
        "feed tick carried a frozen quote; fields: index"),
    "fault.broker_reject": (
        "faults/injectors.py",
        "order rejected by fault; fields: side, units"),
    "fault.broker_disconnect": (
        "faults/injectors.py",
        "broker link dropped mid-submit; fields: side, units"),
    # -- repro.obs.flightrec -------------------------------------------
    "flightrec.dump": (
        "obs/flightrec.py",
        "flight-recorder ring dumped; fields: reason, recorded, "
        "dropped, path (None when the dump stayed in memory)"),
}


def _make_matcher(topics):
    """Compile a topic filter into a fast ``matcher(topic) -> bool``.

    ``topics`` is an iterable of exact names and/or ``"prefix.*"``
    patterns; ``None`` matches everything.
    """
    if topics is None:
        return None
    exact = set()
    prefixes = []
    for topic in topics:
        if topic.endswith(".*"):
            prefixes.append(topic[:-1])  # keep the dot: "kernel."
        elif topic == "*":
            return None
        else:
            exact.add(topic)
    prefix_tuple = tuple(prefixes)

    if not prefix_tuple:
        return exact.__contains__

    def matcher(topic):
        return topic in exact or topic.startswith(prefix_tuple)

    return matcher


class ProbeBus:
    """Fan-out of probe events to any number of subscribers.

    :param clock: object exposing ``.now`` (the DES engine); every
        published event is stamped with ``clock.now``.  ``None`` stamps
        ``0.0`` (useful for unit tests of pure data structures).
    """

    __slots__ = ("active", "_clock", "_subs", "_passive", "published",
                 "flight")

    def __init__(self, clock=None):
        #: True iff at least one *non-passive* subscriber is attached.
        #: Probe sites read this *attribute* (not a property — keep the
        #: idle path to one LOAD_ATTR) before building any payload.
        self.active = False
        self._clock = clock
        self._subs = []
        #: ids of passive subscribers — attached but not counted toward
        #: :attr:`active`, so they ride along for free whenever a real
        #: observer activates the bus (see
        #: :class:`repro.obs.flightrec.FlightRecorder`).
        self._passive = set()
        #: events fanned out so far (diagnostics).
        self.published = 0
        #: the attached :class:`~repro.obs.flightrec.FlightRecorder`,
        #: if any — failure edges (invariant checks, check divergences)
        #: discover the recorder through the bus they already hold.
        self.flight = None

    @property
    def clock(self):
        return self._clock

    @clock.setter
    def clock(self, clock):
        self._clock = clock

    def __len__(self):
        return len(self._subs)

    def subscribe(self, fn, topics=None, passive=False):
        """Attach ``fn(topic, time, data)``; returns ``fn`` for chaining.

        :param topics: iterable of exact topic names and/or ``"layer.*"``
            prefix patterns; ``None`` subscribes to everything.
        :param passive: a passive subscriber does not flip
            :attr:`active`, so probe sites keep skipping payload
            construction until a real observer attaches — it receives
            exactly the events the active observers cause to be
            published.  This is the flight recorder's always-on,
            zero-steady-state-cost mode.
        """
        if any(sub_fn is fn for sub_fn, _ in self._subs):
            raise ValueError(f"{fn!r} already subscribed")
        self._subs.append((fn, _make_matcher(topics)))
        if passive:
            self._passive.add(id(fn))
        else:
            self.active = True
        return fn

    def unsubscribe(self, fn):
        """Detach a subscriber; unknown subscribers are a no-op."""
        self._subs = [entry for entry in self._subs if entry[0] is not fn]
        self._passive.discard(id(fn))
        self.active = any(
            id(sub_fn) not in self._passive for sub_fn, _ in self._subs
        )

    def publish(self, topic, **data):
        """Stamp and fan out one probe event.

        No-op without subscribers — but call sites should still guard on
        :attr:`active` so the keyword payload is never even built.
        """
        subs = self._subs
        if not subs:
            return
        time = self._clock.now if self._clock is not None else 0.0
        self.published += 1
        for fn, matcher in subs:
            if matcher is None or matcher(topic):
                fn(topic, time, data)

    def __repr__(self):
        return (
            f"<ProbeBus subscribers={len(self._subs)} "
            f"published={self.published}>"
        )
