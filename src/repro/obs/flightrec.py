"""Flight recorder: a bounded ring of probe events plus a state dump.

A failed invariant check, a check-differential divergence, or a
degraded-mode entry used to surface as a bare exception — the events
*leading up to* the failure were gone.  The flight recorder keeps the
last N probe events in a ring buffer and, at every failure edge, writes
one deterministic JSONL artifact: a header, a kernel state summary
(per-CPU running thread, ready-queue depths, pending timers, degraded
flag), then the recorded events oldest-first.

The recorder is *always-on by design*: it subscribes to the
:class:`~repro.obs.bus.ProbeBus` **passively** (``passive=True``), so
it never flips ``bus.active`` — probe sites keep skipping payload
construction entirely until a real observer (tracer, metrics, campaign
counter, check runner) activates the bus, at which point the recorder
rides along on the events those observers cause to be published.  This
is the same hoisting discipline ``FastEngine.run`` applies: an idle bus
costs nothing, on either backend.

Failure edges that dump automatically:

* ``InvariantViolationError`` — :func:`repro.faults.invariants.\
check_kernel_invariants` asks ``kernel.probes.flight`` to
  :meth:`~FlightRecorder.record_failure` before raising;
* trace divergence in ``repro check`` — the check runner attaches the
  snapshot into the ``repro-check-repro/1`` artifact;
* ``degrade.enter`` / ``degrade.watchdog_fire`` — the recorder watches
  for these topics itself (:data:`AUTO_DUMP_TOPICS`);
* on demand — ``repro trace --flight-dump PATH``.

Determinism: events are recorded in publish order with simulated-time
stamps and JSON-primitive payloads, so a seeded run dumps byte-identical
artifacts on every execution and on either engine backend.
"""

import json
import os
from collections import deque

#: Dump artifact schema tag (header line ``schema`` field).
FLIGHTREC_SCHEMA = "rtseed-flightrec/1"

#: Default ring capacity (events retained).
DEFAULT_CAPACITY = 512

#: Topics whose arrival triggers an automatic dump when a ``dump_dir``
#: is configured — the resilience layer's own failure edges.
AUTO_DUMP_TOPICS = frozenset({"degrade.enter", "degrade.watchdog_fire"})

#: Process-wide dump sequence numbers, keyed by ``(directory, reason,
#: seed)``.  The counter must outlive any single recorder: two recorder
#: instances in one process (e.g. a campaign scenario and the farm's
#: quarantine recorder, or two scenarios sharing a ``--flight-dir``)
#: dumping the same reason and seed would otherwise both compute
#: sequence 1 and silently overwrite each other's files.  Keying by
#: directory keeps per-run determinism: a fresh run into a fresh
#: directory still starts at 1.
_DUMP_SEQUENCES = {}


def kernel_state_summary(kernel, degrade=None):
    """JSON-ready snapshot of the scheduler state *right now*.

    :param degrade: optional
        :class:`~repro.core.resilience.DegradedModeController`; the
        summary's ``degraded`` field is ``None`` when no controller is
        wired (distinct from ``False`` — "not degraded").

    Timers are keyed by name and sorted by ``(expires_at, name)`` —
    never by ``timer_id``, which is process-global and therefore not
    reproducible across runs.
    """
    engine = kernel.engine
    cpus = []
    for cpu, thread in enumerate(kernel.current):
        cpus.append({
            "cpu": cpu,
            "running": None if thread is None else thread.name,
            "tid": None if thread is None else thread.tid,
            "prio": None if thread is None else thread.priority,
            "ready_depth": len(kernel.runqueues[cpu]),
            "other_depth": len(kernel.other_queues[cpu]),
        })
    timers = sorted(
        (
            {
                "name": timer.name,
                "owner": timer.owner.name,
                "signum": timer.signum,
                "expires_at": timer.expires_at,
            }
            for timer in kernel.armed_timers
        ),
        key=lambda entry: (entry["expires_at"], entry["name"]),
    )
    return {
        "now": engine.now,
        "cpus": cpus,
        "pending_timers": timers,
        "engine": {
            "pending": engine.pending_count,
            "heap_size": engine.heap_size,
            "events_processed": engine.events_processed,
        },
        "threads_alive": sum(1 for t in kernel.threads if t.alive),
        "degraded": None if degrade is None else degrade.degraded,
    }


class FlightRecorder:
    """Bounded ring of probe events with failure-edge dumping.

    :param capacity: events retained (oldest dropped first).
    :param dump_dir: directory for automatic dumps; ``None`` keeps
        snapshots in memory only (callers dump explicitly).
    :param seed: workload seed stamped into every dump header.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, dump_dir=None,
                 seed=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.seed = seed
        #: total events seen (ring length caps at ``capacity``).
        self.recorded = 0
        #: paths written so far, in order.
        self.dumps = []
        #: optional :class:`~repro.core.resilience.\
        #: DegradedModeController` for the summary's ``degraded`` flag.
        self.degrade = None
        self._ring = deque(maxlen=capacity)
        self._kernel = None
        self._bus = None

    @classmethod
    def attach(cls, kernel, capacity=DEFAULT_CAPACITY, dump_dir=None,
               seed=None):
        """Create a recorder wired to ``kernel`` (the usual entry)."""
        recorder = cls(capacity=capacity, dump_dir=dump_dir, seed=seed)
        return recorder.wire(kernel)

    def wire(self, kernel):
        """Subscribe passively to the kernel's bus and register as its
        ``probes.flight`` recorder; returns ``self``."""
        self._kernel = kernel
        return self.wire_bus(kernel.probes)

    def wire_bus(self, bus):
        """Subscribe passively to a bare :class:`~repro.obs.bus.\
ProbeBus` with no kernel behind it; returns ``self``.

        Used by publishers that own their event stream outright — the
        scenario farm records its ``farm.*`` lifecycle this way.  Dumps
        carry ``null`` in place of the kernel state summary."""
        bus.subscribe(self._on_event, passive=True)
        bus.flight = self
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe and unregister (mainly for tests)."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            if self._bus.flight is self:
                self._bus.flight = None
            self._bus = None
        self._kernel = None

    @property
    def dropped(self):
        """Events that fell off the ring's old end."""
        return self.recorded - len(self._ring)

    def __len__(self):
        return len(self._ring)

    def _on_event(self, topic, time, data):
        self.recorded += 1
        self._ring.append((topic, time, data))
        if topic in AUTO_DUMP_TOPICS and self.dump_dir is not None:
            self.dump_to_dir(topic.replace(".", "_"))

    def events(self):
        """Ring contents oldest-first, as fresh JSON-ready dicts."""
        return [
            {"topic": topic, "time": time, "data": dict(data)}
            for topic, time, data in self._ring
        ]

    def tail(self):
        """Ring contents as comparable ``(topic, time, sorted-items)``
        tuples — the canonical form the parity checks byte-compare."""
        return [
            (topic, time, tuple(sorted(data.items())))
            for topic, time, data in self._ring
        ]

    def snapshot(self, reason):
        """The full dump document as one JSON-ready dict."""
        header = {
            "schema": FLIGHTREC_SCHEMA,
            "reason": reason,
            "seed": self.seed,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
        kernel = None
        if self._kernel is not None:
            kernel = kernel_state_summary(self._kernel,
                                          degrade=self.degrade)
            header["now"] = kernel["now"]
        return {"header": header, "kernel": kernel,
                "events": self.events()}

    def dump(self, path, reason, document=None):
        """Write the snapshot to ``path`` as deterministic JSONL.

        Line 1 is the header, line 2 the kernel summary, then one line
        per recorded event oldest-first.  Publishes ``flightrec.dump``
        *after* snapshotting, so the dump never contains its own marker
        but live observers still see it.
        """
        if document is None:
            document = self.snapshot(reason)
        with open(path, "w") as handle:
            handle.write(json.dumps(document["header"],
                                    sort_keys=True) + "\n")
            handle.write(json.dumps(document["kernel"],
                                    sort_keys=True) + "\n")
            for event in document["events"]:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.dumps.append(path)
        bus = self._bus
        if bus is not None and bus.active:
            bus.publish("flightrec.dump", reason=reason,
                        recorded=document["header"]["recorded"],
                        dropped=document["header"]["dropped"],
                        path=path)
        return path

    def dump_to_dir(self, reason, document=None):
        """Dump into :attr:`dump_dir` under a deterministic name.

        ``flightrec-<reason>-seed<seed>.jsonl``, suffixed ``-2``,
        ``-3`` ... for repeat dumps with the same reason — counted
        process-wide per ``(directory, reason, seed)``
        (:data:`_DUMP_SEQUENCES`), so a *different* recorder instance
        dumping the same reason and seed into the same directory gets
        the next suffix instead of overwriting the earlier file.  The
        sequence is part of the deterministic run: two executions of
        the same seed into fresh directories produce identical file
        sets.
        """
        os.makedirs(self.dump_dir, exist_ok=True)
        key = (os.path.abspath(self.dump_dir), reason, self.seed)
        sequence = _DUMP_SEQUENCES.get(key, 0) + 1
        _DUMP_SEQUENCES[key] = sequence
        suffix = "" if sequence == 1 else f"-{sequence}"
        name = f"flightrec-{reason}-seed{self.seed}{suffix}.jsonl"
        return self.dump(os.path.join(self.dump_dir, name), reason,
                         document=document)

    def record_failure(self, reason):
        """Failure-edge entry point: snapshot now, dump if a directory
        is configured, return the snapshot (callers attach it to the
        exception or the check artifact)."""
        document = self.snapshot(reason)
        if self.dump_dir is not None:
            self.dump_to_dir(reason, document=document)
        return document

    def __repr__(self):
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity} "
            f"recorded={self.recorded} dumps={len(self.dumps)}>"
        )
