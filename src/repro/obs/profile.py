"""Wall-clock profiling for the benchmark harness.

The rest of :mod:`repro.obs` observes *simulated* time; this module is
the one place wall-clock enters: benchmarks wrap their phases in
:meth:`WallClockProfile.section` to see where real seconds go
(ROADMAP's fast-as-hardware-allows goal needs both clocks visible).

Usage::

    profile = WallClockProfile()
    with profile.section("fig10"):
        run_fig10()
    with profile.section("export"):
        exporter.write(path)
    print(profile.format())

:class:`NullProfile` is a no-op drop-in so library code can accept a
``profile=`` argument without conditioning every call site.
"""

import time
from contextlib import contextmanager


class _Section:
    __slots__ = ("calls", "seconds", "min", "max")

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0
        self.min = None
        self.max = None

    def add(self, elapsed):
        self.calls += 1
        self.seconds += elapsed
        if self.min is None or elapsed < self.min:
            self.min = elapsed
        if self.max is None or elapsed > self.max:
            self.max = elapsed


class WallClockProfile:
    """Accumulate wall-clock time per named section."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._sections = {}

    @contextmanager
    def section(self, name):
        """Context manager timing one block; nests and repeats freely."""
        start = self._clock()
        try:
            yield self
        finally:
            self.add(name, self._clock() - start)

    def add(self, name, seconds):
        """Record an externally measured duration."""
        section = self._sections.get(name)
        if section is None:
            section = self._sections[name] = _Section()
        section.add(seconds)

    def wrap(self, name, fn):
        """Return ``fn`` wrapped so every call is timed under ``name``."""
        def timed(*args, **kwargs):
            with self.section(name):
                return fn(*args, **kwargs)
        return timed

    def report(self):
        """Dict report: name -> {calls, seconds, mean_ms, min_ms, max_ms}."""
        out = {}
        for name, section in self._sections.items():
            out[name] = {
                "calls": section.calls,
                "seconds": round(section.seconds, 6),
                "mean_ms": round(
                    section.seconds / section.calls * 1000.0, 3
                ),
                "min_ms": round(section.min * 1000.0, 3),
                "max_ms": round(section.max * 1000.0, 3),
            }
        return out

    def format(self):
        """Aligned text table of the report, slowest section first."""
        report = self.report()
        if not report:
            return "(no sections recorded)"
        lines = [
            f"{'section':30s} {'calls':>6s} {'total [s]':>10s} "
            f"{'mean [ms]':>10s} {'max [ms]':>10s}"
        ]
        for name, row in sorted(
            report.items(), key=lambda item: -item[1]["seconds"]
        ):
            lines.append(
                f"{name:30s} {row['calls']:>6d} {row['seconds']:>10.4f} "
                f"{row['mean_ms']:>10.3f} {row['max_ms']:>10.3f}"
            )
        return "\n".join(lines)


class NullProfile:
    """No-op stand-in accepted anywhere a profile is."""

    @contextmanager
    def section(self, name):
        yield self

    def add(self, name, seconds):
        pass

    def wrap(self, name, fn):
        return fn

    def report(self):
        return {}

    def format(self):
        return "(profiling disabled)"
