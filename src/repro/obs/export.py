"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

:class:`ChromeTraceExporter` subscribes to a kernel's probe bus and
builds a `Chrome trace-event format`__ document that loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* **one track per CPU** (pid 1, tid = CPU id): ``B``/``E`` spans naming
  the thread occupying that hardware thread, reconstructed from
  dispatch/preempt/block/yield/exit events;
* **one track per thread** (pid 2, tid = per-run dense thread index):
  spans for the middleware protocol phases (mandatory / optional /
  wind-up) and instants for releases, signal deliveries, timer
  expiries, and discards.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Timestamps are simulated nanoseconds converted to the format's
microseconds.  Thread ids are remapped to first-seen dense indices so
documents stay stable even across exporters fed merged multi-kernel
streams; within one kernel, tids are already per-run deterministic.

:class:`JsonlExporter` is the low-tech sibling: every probe event as
one JSON line on a stream, suitable for ``jq`` pipelines and diffing
deterministic runs.
"""

import json

from repro.simkernel.signals import signal_name


class TraceValidationError(Exception):
    """An exported document violates the trace-event schema."""


class ChromeTraceExporter:
    """Build a Perfetto-loadable trace from probe-bus events.

    :param clock: object exposing ``.now``; used by :meth:`close` to
        end still-open spans at the final simulated time.
    """

    TOPICS = ("kernel.*", "rtseed.*", "trading.*")

    #: pid of the per-CPU occupancy tracks.
    CPU_PID = 1
    #: pid of the per-thread protocol-phase tracks.
    THREAD_PID = 2

    def __init__(self, clock=None):
        self.clock = clock
        self.events = []
        self._bus = None
        #: cpu -> (thread_name, tid) currently occupying it.
        self._running = {}
        #: raw tid -> dense per-run index (determinism across runs).
        self._tid_map = {}
        #: dense tid -> open phase-span count (sanity bookkeeping).
        self._open_phases = {}
        self._thread_names = {}
        self._seen_cpus = set()

    @classmethod
    def attach(cls, kernel):
        """Create an exporter and subscribe it to ``kernel.probes``."""
        exporter = cls(clock=kernel.engine)
        exporter._bus = kernel.probes
        kernel.probes.subscribe(exporter, topics=cls.TOPICS)
        return exporter

    def detach(self):
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    # -- event construction --------------------------------------------

    def _dense_tid(self, tid):
        dense = self._tid_map.get(tid)
        if dense is None:
            dense = self._tid_map[tid] = len(self._tid_map)
        return dense

    def _emit(self, name, phase, time, pid, tid, cat, args=None):
        event = {
            "name": name,
            "ph": phase,
            "ts": time / 1000.0,  # sim ns -> trace-format us
            "pid": pid,
            "tid": tid,
            "cat": cat,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def _open_cpu(self, cpu, thread_name, tid, time):
        self._seen_cpus.add(cpu)
        self._running[cpu] = (thread_name, tid)
        self._emit(thread_name, "B", time, self.CPU_PID, cpu, "cpu")

    def _close_cpu(self, cpu, tid, time):
        current = self._running.get(cpu)
        if current is not None and current[1] == tid:
            del self._running[cpu]
            self._emit(current[0], "E", time, self.CPU_PID, cpu, "cpu")

    def _phase(self, phase, name, time, tid, args=None):
        dense = self._dense_tid(tid)
        if phase == "B":
            self._open_phases[dense] = self._open_phases.get(dense, 0) + 1
        else:
            self._open_phases[dense] = self._open_phases.get(dense, 1) - 1
        self._emit(name, phase, time, self.THREAD_PID, dense, "rtseed",
                   args)

    def _instant(self, name, time, tid, cat, args=None):
        self._emit(name, "I", time, self.THREAD_PID, self._dense_tid(tid),
                   cat, args)

    # -- the subscriber ------------------------------------------------

    def __call__(self, topic, time, data):
        tid = data.get("tid")
        if tid is not None:
            dense = self._dense_tid(tid)
            self._thread_names.setdefault(dense, data.get("thread", "?"))
        elif topic.startswith("trading."):
            # trading events are published from task bodies that never
            # see their thread object; give them one shared track
            self._thread_names.setdefault(self._dense_tid(None),
                                          "trading")

        if topic == "kernel.dispatch":
            cpu = data["cpu"]
            current = self._running.get(cpu)
            if current is not None:  # defensive: close a dangling span
                self._close_cpu(cpu, current[1], time)
            self._open_cpu(cpu, data["thread"], tid, time)
        elif topic in ("kernel.preempt", "kernel.block", "kernel.yield",
                       "kernel.thread_exit"):
            self._close_cpu(data["cpu"], tid, time)
        elif topic == "kernel.migrate":
            self._close_cpu(data["from_cpu"], tid, time)
            self._instant("migrate", time, tid,
                          "kernel", {"from": data["from_cpu"],
                                     "to": data["to_cpu"]})
        elif topic == "kernel.signal_deliver":
            self._instant(signal_name(data["signum"]), time, tid,
                          "kernel", {"signum": data["signum"],
                                     "latency_ns": data["latency"]})
        elif topic == "kernel.timer_expire":
            self._instant(data["timer"], time, tid, "timer",
                          {"signum": data["signum"]})
        elif topic == "rtseed.release":
            self._instant(f"release#{data['job']}", time, tid, "rtseed",
                          {"task": data["task"]})
        elif topic == "rtseed.mandatory_begin":
            self._phase("B", "mandatory", time, tid,
                        {"task": data["task"], "job": data["job"]})
        elif topic == "rtseed.mandatory_end":
            self._phase("E", "mandatory", time, tid)
        elif topic == "rtseed.optional_begin":
            self._phase("B", f"optional[{data['part']}]", time, tid,
                        {"task": data["task"], "job": data["job"]})
        elif topic == "rtseed.optional_end":
            self._phase("E", f"optional[{data['part']}]", time, tid,
                        {"fate": data["fate"]})
        elif topic == "rtseed.windup_begin":
            self._phase("B", "windup", time, tid,
                        {"task": data["task"], "job": data["job"]})
        elif topic == "rtseed.windup_end":
            self._phase("E", "windup", time, tid)
        elif topic == "rtseed.discard":
            self._instant("discard", time, tid, "rtseed",
                          {"task": data["task"],
                           "n_parts": data["n_parts"]})
        elif topic == "trading.decision":
            self._instant(f"decision[{data['kind']}]", time, tid,
                          "trading", {"job": data["job"],
                                      "confidence": data["confidence"]})
        elif topic == "trading.order":
            self._instant(f"order[{data['side']}]", time, tid, "trading",
                          {"job": data["job"], "units": data["units"]})

    # -- finishing / output --------------------------------------------

    def close(self, at_time=None):
        """End every still-open span (idempotent); call after the run."""
        if at_time is None:
            at_time = self.clock.now if self.clock is not None else 0.0
        for cpu in sorted(self._running):
            name, _tid = self._running[cpu]
            self._emit(name, "E", at_time, self.CPU_PID, cpu, "cpu")
        self._running.clear()
        for dense in sorted(self._open_phases):
            for _ in range(max(self._open_phases[dense], 0)):
                self._emit("(unfinished)", "E", at_time, self.THREAD_PID,
                           dense, "rtseed")
        self._open_phases.clear()

    def _metadata(self):
        """Process/thread naming events (Perfetto track labels)."""
        meta = [
            {"name": "process_name", "ph": "M", "pid": self.CPU_PID,
             "tid": 0, "args": {"name": "CPUs"}},
            {"name": "process_name", "ph": "M", "pid": self.THREAD_PID,
             "tid": 0, "args": {"name": "threads"}},
        ]
        for cpu in sorted(self._seen_cpus):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": self.CPU_PID, "tid": cpu,
                         "args": {"name": f"cpu{cpu}"}})
        for dense in sorted(self._thread_names):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": self.THREAD_PID, "tid": dense,
                         "args": {"name": self._thread_names[dense]}})
        return meta

    def to_dict(self):
        """The complete trace document (close spans first)."""
        self.close()
        return {
            "traceEvents": self._metadata() + self.events,
            "displayTimeUnit": "ms",
        }

    def to_json(self):
        return json.dumps(self.to_dict(), separators=(",", ":"),
                          sort_keys=False)

    def write(self, path):
        """Validate and write the trace document to ``path``."""
        document = self.to_dict()
        validate_chrome_trace(document)
        with open(path, "w") as handle:
            json.dump(document, handle, separators=(",", ":"))
        return path


def validate_chrome_trace(document):
    """Check a trace document against the schema Perfetto relies on.

    Raises :class:`TraceValidationError` on: missing keys, unknown
    phases, non-monotonic timestamps within a track, or unbalanced
    ``B``/``E`` nesting per ``(pid, tid)`` track.  Returns the number
    of trace events checked.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise TraceValidationError("missing traceEvents array")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise TraceValidationError("traceEvents is not a list")
    stacks = {}
    last_ts = {}
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TraceValidationError(
                    f"event #{index} missing {key!r}: {event!r}"
                )
        phase = event["ph"]
        if phase == "M":
            continue
        if phase not in ("B", "E", "I", "X"):
            raise TraceValidationError(
                f"event #{index} has unknown phase {phase!r}"
            )
        if "ts" not in event:
            raise TraceValidationError(f"event #{index} missing ts")
        track = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(track, float("-inf")):
            raise TraceValidationError(
                f"event #{index} time-travels on track {track}: "
                f"{event['ts']} < {last_ts[track]}"
            )
        last_ts[track] = event["ts"]
        if phase == "B":
            stacks.setdefault(track, []).append(event["name"])
        elif phase == "E":
            stack = stacks.get(track)
            if not stack:
                raise TraceValidationError(
                    f"event #{index}: E without open B on track {track}"
                )
            stack.pop()
    for track, stack in stacks.items():
        if stack:
            raise TraceValidationError(
                f"track {track} left {len(stack)} span(s) open: {stack}"
            )
    return len(events)


class JsonlExporter:
    """Stream every probe event as one JSON line.

    :param stream: writable text stream (kept open; caller owns it).
    :param topics: topic filter (default: kernel + middleware + trading;
        pass ``("*",)`` to include the raw engine firehose).
    """

    TOPICS = ("kernel.*", "rtseed.*", "termination.*", "trading.*")

    def __init__(self, stream, topics=None):
        self.stream = stream
        self.topics = tuple(topics) if topics is not None else self.TOPICS
        self.lines = 0
        self._bus = None

    @classmethod
    def attach(cls, kernel, stream, topics=None):
        exporter = cls(stream, topics=topics)
        exporter._bus = kernel.probes
        kernel.probes.subscribe(exporter, topics=exporter.topics)
        return exporter

    def detach(self):
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def __call__(self, topic, time, data):
        record = {"t": time, "topic": topic}
        record.update(data)
        self.stream.write(json.dumps(record, separators=(",", ":")))
        self.stream.write("\n")
        self.lines += 1
